"""Unit tests for the dominance regions (Fig 1) and window choice (Fig 2)."""

from __future__ import annotations

import math

import pytest

from repro.analysis import dominance
from repro.analysis import message as ma
from repro.analysis import window_choice as wc
from repro.exceptions import InvalidParameterError


class TestDominanceClassification:
    def test_regions_at_omega_half(self):
        # thresholds: lower 0.5, upper 0.75.
        assert (
            dominance.best_expected_algorithm(0.9, 0.5)
            is dominance.DominanceRegion.ST1
        )
        assert (
            dominance.best_expected_algorithm(0.3, 0.5)
            is dominance.DominanceRegion.ST2
        )
        assert (
            dominance.best_expected_algorithm(0.6, 0.5)
            is dominance.DominanceRegion.SW1
        )

    def test_boundary_detection(self):
        assert (
            dominance.best_expected_algorithm(0.75, 0.5)
            is dominance.DominanceRegion.BOUNDARY
        )

    def test_omega_zero_sw1_everywhere_inside(self):
        for theta in (0.05, 0.5, 0.95):
            assert (
                dominance.best_expected_algorithm(theta, 0.0)
                is dominance.DominanceRegion.SW1
            )

    def test_classification_matches_argmin(self):
        """Off the boundaries the analytic region equals the argmin of
        the three expected-cost formulas."""
        steps = 41
        for i in range(steps):
            for j in range(steps):
                theta = i / (steps - 1)
                omega = j / (steps - 1)
                region = dominance.best_expected_algorithm(theta, omega, 1e-9)
                if region is dominance.DominanceRegion.BOUNDARY:
                    continue
                upper = dominance.st1_sw1_boundary(omega)
                lower = dominance.st2_sw1_boundary(omega)
                if min(abs(theta - upper), abs(theta - lower)) < 1e-6:
                    continue
                costs = {
                    "st1": ma.expected_cost_st1(theta, omega),
                    "st2": ma.expected_cost_st2(theta),
                    "sw1": ma.expected_cost_sw1(theta, omega),
                }
                assert min(costs, key=costs.get) == region.value, (theta, omega)

    def test_grid_cells(self):
        cells = dominance.dominance_grid([0.2, 0.8], [0.5])
        assert len(cells) == 2
        assert cells[0].theta == 0.2
        assert {name for name, _cost in cells[0].expected_costs} == {
            "st1",
            "st2",
            "sw1",
        }


class TestK0Threshold:
    def test_anchor_045(self):
        assert wc.first_odd_k_beating_sw1(0.45) == 39

    def test_anchor_080(self):
        assert wc.first_odd_k_beating_sw1(0.8) == 7

    def test_paper_axis_ticks(self):
        """The paper's Figure 2 marks k ticks 5, 7, 11, 21, 39, 95 on
        the staircase; each must be attained at some omega (95 only on
        a fine grid near omega = 0.42)."""
        attained = {
            wc.first_odd_k_beating_sw1(omega / 1000.0)
            for omega in range(401, 1001)
        }
        attained |= {
            wc.first_odd_k_beating_sw1(omega / 100000.0)
            for omega in range(42000, 42110)
        }
        for tick in (5, 7, 11, 21, 39, 95):
            assert tick in attained, f"k={tick} never the first odd k"

    def test_k3_never_attained(self):
        """k0(omega) > 3 even at omega = 1 (k0(1) = (9+sqrt(153))/6
        ~ 3.56), so the smallest useful window beyond SW1 is k = 5 —
        the paper's figure starts its staircase there."""
        assert wc.k0_threshold(1.0) == pytest.approx(
            (9 + math.sqrt(153)) / 6
        )
        assert wc.first_odd_k_beating_sw1(1.0) == 5

    def test_below_04_returns_none(self):
        for omega in (0.0, 0.2, 0.4):
            assert wc.first_odd_k_beating_sw1(omega) is None

    def test_monotone_decreasing_in_omega(self):
        """Cheaper control messages favour SW1; the threshold k falls
        as omega rises."""
        values = [
            wc.first_odd_k_beating_sw1(omega / 100.0) for omega in range(41, 101, 2)
        ]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_k0_formula_solves_the_quadratic(self):
        for omega in (0.45, 0.6, 0.8, 1.0):
            k0 = wc.k0_threshold(omega)
            residual = (5 * omega - 2) * k0**2 + (omega - 10) * k0 - 6 * omega
            assert residual == pytest.approx(0.0, abs=1e-9)

    def test_k0_rejects_low_omega(self):
        with pytest.raises(InvalidParameterError):
            wc.k0_threshold(0.4)

    def test_first_odd_k_consistent_with_direct_comparison(self):
        for omega in (0.45, 0.55, 0.7, 0.9):
            k = wc.first_odd_k_beating_sw1(omega)
            assert ma.average_cost_swk(k, omega) <= ma.average_cost_sw1(omega)
            if k > 3:
                assert ma.average_cost_swk(k - 2, omega) > ma.average_cost_sw1(
                    omega
                )


class TestRecommendWindow:
    def test_paper_connection_picks(self):
        assert wc.recommend_window(0.10, model="connection").k == 9
        assert wc.recommend_window(0.06, model="connection").k == 15

    def test_reports_competitive_price(self):
        pick = wc.recommend_window(0.10, model="connection")
        assert pick.competitive_factor == 10.0
        assert pick.average_excess <= 0.10

    def test_message_model_low_omega_picks_sw1(self):
        pick = wc.recommend_window(0.5, model="message", omega=0.2)
        assert pick.k == 1

    def test_message_model_returns_odd_k(self):
        pick = wc.recommend_window(0.10, model="message", omega=0.9)
        assert pick.k % 2 == 1

    def test_rejects_non_positive_target(self):
        with pytest.raises(InvalidParameterError):
            wc.recommend_window(0.0)

    def test_rejects_unknown_model(self):
        with pytest.raises(InvalidParameterError):
            wc.recommend_window(0.1, model="carrier-pigeon")

    def test_tighter_target_needs_larger_window(self):
        loose = wc.recommend_window(0.2, model="connection")
        tight = wc.recommend_window(0.02, model="connection")
        assert tight.k > loose.k
