"""Unit tests for pi_k and the deallocation probability (equation 4)."""

from __future__ import annotations

import math

import pytest
from scipy import stats

from repro.analysis.majority import (
    allocation_probability,
    deallocation_probability,
    half_window,
    pi_k,
)
from repro.exceptions import InvalidParameterError


class TestHalfWindow:
    @pytest.mark.parametrize("k, n", [(1, 0), (3, 1), (9, 4), (15, 7)])
    def test_values(self, k, n):
        assert half_window(k) == n

    def test_rejects_even(self):
        with pytest.raises(InvalidParameterError):
            half_window(4)


class TestPiK:
    def test_theta_zero_always_copy(self):
        for k in (1, 3, 9, 33):
            assert pi_k(0.0, k) == 1.0

    def test_theta_one_never_copy(self):
        for k in (1, 3, 9, 33):
            assert pi_k(1.0, k) == 0.0

    def test_theta_half_is_half(self):
        """At theta = 1/2 the binomial is symmetric and k odd, so the
        majority-reads probability is exactly 1/2."""
        for k in (1, 3, 5, 9, 15, 33):
            assert pi_k(0.5, k) == pytest.approx(0.5)

    def test_symmetry(self):
        """pi_k(1-theta) = 1 - pi_k(theta): flipping reads and writes
        flips the majority."""
        for k in (3, 9, 15):
            for theta in (0.1, 0.25, 0.4, 0.45):
                assert pi_k(1.0 - theta, k) == pytest.approx(1.0 - pi_k(theta, k))

    def test_k1_is_read_probability(self):
        for theta in (0.0, 0.2, 0.7, 1.0):
            assert pi_k(theta, 1) == pytest.approx(1.0 - theta)

    def test_matches_binomial_cdf(self):
        """Equation 4 is the Binomial(k, theta) CDF at n."""
        for k in (3, 9, 21):
            n = half_window(k)
            for theta in (0.1, 0.3, 0.5, 0.8):
                assert pi_k(theta, k) == pytest.approx(
                    float(stats.binom.cdf(n, k, theta)), rel=1e-10
                )

    def test_monotone_in_theta(self):
        values = [pi_k(theta / 50, 9) for theta in range(51)]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))

    def test_sharpens_with_k(self):
        """Larger windows make the majority estimate sharper: for
        theta < 1/2 pi_k increases with k, for theta > 1/2 it decreases
        (this is Lemma 2 for theta > 0.5)."""
        ks = (3, 5, 9, 15, 33)
        low = [pi_k(0.3, k) for k in ks]
        assert all(a < b for a, b in zip(low, low[1:]))
        high = [pi_k(0.7, k) for k in ks]
        assert all(a > b for a, b in zip(high, high[1:]))


class TestDeallocationProbability:
    def test_k3_hand_computed(self):
        # n=1: theta^2 (1-theta)^2 * C(2,1)
        theta = 0.4
        expected = 2 * theta**2 * (1 - theta) ** 2
        assert deallocation_probability(theta, 3) == pytest.approx(expected)

    def test_rejects_k1(self):
        with pytest.raises(InvalidParameterError):
            deallocation_probability(0.5, 1)

    def test_zero_at_extremes(self):
        assert deallocation_probability(0.0, 9) == 0.0
        assert deallocation_probability(1.0, 9) == 0.0

    def test_symmetric_in_theta(self):
        for k in (3, 9):
            for theta in (0.2, 0.35):
                assert deallocation_probability(theta, k) == pytest.approx(
                    deallocation_probability(1.0 - theta, k)
                )

    def test_allocation_equals_deallocation(self):
        """Steady state: allocations and deallocations balance."""
        assert allocation_probability(0.3, 9) == deallocation_probability(0.3, 9)

    def test_matches_simulated_transition_rate(self):
        """The per-request deallocation frequency of a long SWk run
        converges to the closed form."""
        import numpy as np

        from repro.core import SlidingWindow, replay
        from repro.costmodels import ConnectionCostModel, CostEventKind
        from repro.workload import bernoulli_schedule

        k, theta, length = 5, 0.45, 120_000
        schedule = bernoulli_schedule(theta, length, rng=np.random.default_rng(8))
        result = replay(SlidingWindow(k), schedule, ConnectionCostModel())
        deallocations = result.event_counts().get(
            CostEventKind.WRITE_PROPAGATED_DEALLOCATE, 0
        )
        assert deallocations / length == pytest.approx(
            deallocation_probability(theta, k), abs=0.005
        )
