"""Unit tests for the exact Markov-chain analyzer."""

from __future__ import annotations

import pytest

from repro.analysis import connection as ca
from repro.analysis import message as ma
from repro.analysis.majority import pi_k
from repro.analysis.markov import (
    MAX_STATES,
    analyze,
    exact_average_cost,
    exact_expected_cost,
)
from repro.analysis.numerics import monte_carlo_expected_cost
from repro.core import EwmaAllocator, make_algorithm
from repro.costmodels import ConnectionCostModel, MessageCostModel
from repro.exceptions import InvalidParameterError

CONNECTION = ConnectionCostModel()
MESSAGE = MessageCostModel(0.45)


class TestStateEnumeration:
    def test_static_algorithms_have_one_state(self):
        assert analyze(make_algorithm("st1"), 0.3).num_states == 1
        assert analyze(make_algorithm("st2"), 0.3).num_states == 1

    def test_sw1_has_two_states(self):
        assert analyze(make_algorithm("sw1"), 0.3).num_states == 2

    def test_swk_has_2_to_the_k_states(self):
        # The scheme is determined by the window, so states = windows.
        assert analyze(make_algorithm("sw3"), 0.3).num_states == 8
        assert analyze(make_algorithm("sw5"), 0.3).num_states == 32

    def test_t1m_has_m_plus_1_states(self):
        # Counter values 0..m-1 without copy, plus the with-copy state.
        assert analyze(make_algorithm("t1_4"), 0.3).num_states == 5

    def test_stationary_distribution_sums_to_one(self):
        chain = analyze(make_algorithm("sw5"), 0.42)
        assert sum(chain.stationary) == pytest.approx(1.0)

    def test_event_rates_sum_to_one(self):
        chain = analyze(make_algorithm("sw5"), 0.42)
        assert sum(chain.event_rates.values()) == pytest.approx(1.0)


class TestAgainstClosedForms:
    @pytest.mark.parametrize("theta", [0.1, 0.35, 0.5, 0.8])
    @pytest.mark.parametrize("k", [1, 3, 5, 9])
    def test_copy_probability_is_pi_k(self, theta, k):
        name = f"sw{k}" if k > 1 else "sw1"
        chain = analyze(make_algorithm(name), theta)
        assert chain.copy_probability == pytest.approx(pi_k(theta, k), abs=1e-9)

    @pytest.mark.parametrize("theta", [0.15, 0.5, 0.75])
    def test_swk_connection_exp(self, theta):
        for k in (3, 5, 9):
            exact = exact_expected_cost(make_algorithm(f"sw{k}"), CONNECTION, theta)
            assert exact == pytest.approx(ca.expected_cost_swk(theta, k), abs=1e-9)

    @pytest.mark.parametrize("theta", [0.15, 0.5, 0.75])
    def test_swk_message_exp_equation11(self, theta):
        for k in (3, 5, 9):
            exact = exact_expected_cost(make_algorithm(f"sw{k}"), MESSAGE, theta)
            assert exact == pytest.approx(
                ma.expected_cost_swk(theta, k, 0.45), abs=1e-9
            )

    def test_sw1_message_exp_theorem5(self):
        exact = exact_expected_cost(make_algorithm("sw1"), MESSAGE, 0.4)
        assert exact == pytest.approx(ma.expected_cost_sw1(0.4, 0.45), abs=1e-12)

    def test_t1m_connection_exp(self):
        exact = exact_expected_cost(make_algorithm("t1_6"), CONNECTION, 0.7)
        assert exact == pytest.approx(ca.expected_cost_t1m(0.7, 6), abs=1e-9)

    def test_t2m_connection_exp(self):
        exact = exact_expected_cost(make_algorithm("t2_6"), CONNECTION, 0.7)
        assert exact == pytest.approx(ca.expected_cost_t2m(0.7, 6), abs=1e-9)

    def test_statics(self):
        assert exact_expected_cost(
            make_algorithm("st1"), MESSAGE, 0.3
        ) == pytest.approx(ma.expected_cost_st1(0.3, 0.45))
        assert exact_expected_cost(
            make_algorithm("st2"), CONNECTION, 0.3
        ) == pytest.approx(0.3)

    def test_average_cost_simpson(self):
        assert exact_average_cost(
            make_algorithm("sw5"), CONNECTION, num_thetas=101
        ) == pytest.approx(ca.average_cost_swk(5), abs=1e-6)

    def test_average_cost_message(self):
        assert exact_average_cost(
            make_algorithm("sw3"), MESSAGE, num_thetas=101
        ) == pytest.approx(ma.average_cost_swk(3, 0.45), abs=1e-6)


class TestBeyondThePaper:
    def test_t2m_message_model_matches_simulation(self):
        """No closed form exists in the paper; chain vs Monte-Carlo."""
        exact = exact_expected_cost(make_algorithm("t2_3"), MESSAGE, 0.55)
        simulated = monte_carlo_expected_cost(
            make_algorithm("t2_3"), MESSAGE, 0.55, length=80_000, seed=5
        )
        assert simulated == pytest.approx(exact, abs=0.01)

    def test_ewma_matches_simulation(self):
        allocator = EwmaAllocator(0.3, quantization=3)
        exact = exact_expected_cost(allocator, CONNECTION, 0.4)
        simulated = monte_carlo_expected_cost(
            allocator.clone(), CONNECTION, 0.4, length=80_000, seed=6
        )
        assert simulated == pytest.approx(exact, abs=0.01)

    def test_degenerate_thetas(self):
        # theta = 0: all reads, SWk ends up holding a copy; cost 0.
        assert exact_expected_cost(make_algorithm("sw5"), CONNECTION, 0.0) == (
            pytest.approx(0.0, abs=1e-9)
        )
        assert exact_expected_cost(make_algorithm("sw5"), CONNECTION, 1.0) == (
            pytest.approx(0.0, abs=1e-9)
        )


class TestValidation:
    def test_rejects_bad_theta(self):
        with pytest.raises(InvalidParameterError):
            analyze(make_algorithm("sw3"), 1.5)

    def test_rejects_even_simpson_grid(self):
        with pytest.raises(InvalidParameterError):
            exact_average_cost(make_algorithm("sw3"), CONNECTION, num_thetas=100)

    def test_state_space_guard(self):
        # Quantization 6 makes the EWMA orbit far exceed MAX_STATES.
        with pytest.raises(InvalidParameterError):
            analyze(EwmaAllocator(0.37, quantization=8), 0.5)

    def test_does_not_mutate_input_algorithm(self):
        algorithm = make_algorithm("sw3")
        algorithm.process(__import__("repro.types", fromlist=["READ"]).READ)
        before = algorithm.state_signature()
        analyze(algorithm, 0.5)
        assert algorithm.state_signature() == before
