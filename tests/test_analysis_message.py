"""Unit tests for the message-model closed forms (section 6)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import message as ma
from repro.analysis.numerics import average_by_quadrature
from repro.exceptions import InvalidParameterError


class TestExpectedCosts:
    def test_statics_eq7(self):
        assert ma.expected_cost_st1(0.3, 0.5) == pytest.approx(1.5 * 0.7)
        assert ma.expected_cost_st2(0.3) == pytest.approx(0.3)

    def test_sw1_theorem5(self):
        for theta in (0.2, 0.5, 0.9):
            for omega in (0.0, 0.4, 1.0):
                assert ma.expected_cost_sw1(theta, omega) == pytest.approx(
                    theta * (1 - theta) * (1 + 2 * omega)
                )

    def test_sw1_zero_at_extremes(self):
        assert ma.expected_cost_sw1(0.0, 0.7) == 0.0
        assert ma.expected_cost_sw1(1.0, 0.7) == 0.0

    def test_swk_reduces_to_connection_form_at_omega_zero(self):
        """With free control messages, eq. 11 collapses to eq. 5."""
        from repro.analysis import connection as ca

        for k in (3, 9, 15):
            for theta in (0.1, 0.5, 0.8):
                assert ma.expected_cost_swk(theta, k, 0.0) == pytest.approx(
                    ca.expected_cost_swk(theta, k)
                )

    def test_swk_eq11_hand_computed_k3(self):
        """Spell out eq. 11 for k=3 and compare term by term."""
        theta, omega = 0.4, 0.6
        pi3 = (1 - theta) ** 3 + 3 * theta * (1 - theta) ** 2
        expected = (
            theta * pi3
            + (1 + omega) * (1 - theta) * (1 - pi3)
            + omega * 2 * theta**2 * (1 - theta) ** 2
        )
        assert ma.expected_cost_swk(theta, 3, omega) == pytest.approx(expected)

    def test_swk_rejects_k1(self):
        with pytest.raises(InvalidParameterError):
            ma.expected_cost_swk(0.5, 1, 0.3)

    def test_theorem9_inequality(self):
        for omega in np.linspace(0, 1, 11):
            for theta in np.linspace(0, 1, 51):
                floor = min(
                    ma.expected_cost_sw1(float(theta), float(omega)),
                    ma.expected_cost_st1(float(theta), float(omega)),
                    ma.expected_cost_st2(float(theta)),
                )
                for k in (3, 9, 21):
                    assert (
                        ma.expected_cost_swk(float(theta), k, float(omega))
                        >= floor - 1e-12
                    )


class TestDominanceThresholds:
    def test_theorem6_formulas(self):
        assert ma.st1_dominance_threshold(0.5) == pytest.approx(0.75)
        assert ma.st2_dominance_threshold(0.5) == pytest.approx(0.5)

    def test_omega_zero_gives_whole_interval_to_sw1(self):
        assert ma.st1_dominance_threshold(0.0) == 1.0
        assert ma.st2_dominance_threshold(0.0) == 0.0

    def test_omega_one_closes_the_wedge(self):
        assert ma.st1_dominance_threshold(1.0) == pytest.approx(2 / 3)
        assert ma.st2_dominance_threshold(1.0) == pytest.approx(2 / 3)

    def test_ties_on_the_boundaries(self):
        """On the threshold curves the neighbouring costs are equal."""
        for omega in (0.2, 0.5, 0.8):
            upper = ma.st1_dominance_threshold(omega)
            assert ma.expected_cost_st1(upper, omega) == pytest.approx(
                ma.expected_cost_sw1(upper, omega)
            )
            lower = ma.st2_dominance_threshold(omega)
            assert ma.expected_cost_st2(lower) == pytest.approx(
                ma.expected_cost_sw1(lower, omega)
            )


class TestAverageCosts:
    def test_statics_eq8(self):
        assert ma.average_cost_st1(0.6) == pytest.approx(0.8)
        assert ma.average_cost_st2() == 0.5

    def test_sw1_theorem7(self):
        assert ma.average_cost_sw1(0.4) == pytest.approx(1.8 / 6)

    def test_theorem7_ordering(self):
        for omega in (0.0, 0.3, 0.7, 1.0):
            assert (
                ma.average_cost_sw1(omega)
                <= ma.average_cost_st2()
                <= ma.average_cost_st1(omega)
            )

    @pytest.mark.parametrize("k", [3, 5, 9, 15, 41])
    @pytest.mark.parametrize("omega", [0.0, 0.3, 0.7, 1.0])
    def test_eq12_vs_quadrature(self, k, omega):
        integral = average_by_quadrature(
            lambda t: ma.expected_cost_swk(t, k, omega)
        )
        assert integral == pytest.approx(ma.average_cost_swk(k, omega), abs=1e-9)

    def test_sw1_quadrature(self):
        for omega in (0.0, 0.5, 1.0):
            integral = average_by_quadrature(
                lambda t: ma.expected_cost_sw1(t, omega)
            )
            assert integral == pytest.approx(ma.average_cost_sw1(omega), abs=1e-12)

    def test_corollary2_lower_bound(self):
        for omega in (0.0, 0.4, 1.0):
            bound = ma.average_cost_swk_lower_bound(omega)
            for k in range(3, 400, 2):
                assert ma.average_cost_swk(k, omega) > bound

    def test_corollary2_bound_is_the_limit(self):
        omega = 0.6
        assert ma.average_cost_swk(99_999, omega) == pytest.approx(
            ma.average_cost_swk_lower_bound(omega), abs=1e-4
        )

    def test_corollary2_monotone_decrease(self):
        for omega in (0.1, 0.5, 0.9):
            values = [ma.average_cost_swk(k, omega) for k in range(3, 60, 2)]
            assert all(a > b for a, b in zip(values, values[1:]))


class TestCompetitiveFactors:
    def test_sw1_theorem11(self):
        assert ma.competitive_factor_sw1(0.5) == 2.0

    def test_swk_theorem12(self):
        assert ma.competitive_factor_swk(9, 0.4) == pytest.approx(1.2 * 10 + 0.4)

    def test_swk_factor_reduces_at_omega_zero(self):
        """With free control messages Theorem 12 gives k+1 (Theorem 4)."""
        for k in (3, 9, 15):
            assert ma.competitive_factor_swk(k, 0.0) == k + 1

    def test_swk_rejects_k1(self):
        with pytest.raises(InvalidParameterError):
            ma.competitive_factor_swk(1, 0.5)

    def test_omega_validation(self):
        with pytest.raises(InvalidParameterError):
            ma.ensure_omega(1.5)
        with pytest.raises(InvalidParameterError):
            ma.ensure_omega(-0.1)
