"""Unit tests for the exact modulated-workload analysis."""

from __future__ import annotations

import pytest

from repro.analysis import connection as ca
from repro.analysis.markov import exact_expected_cost
from repro.analysis.modulated import analyze_modulated, best_window_for_burstiness
from repro.core import make_algorithm, replay
from repro.costmodels import ConnectionCostModel, MessageCostModel
from repro.exceptions import InvalidParameterError
from repro.workload import BurstyWorkload

MODEL = ConnectionCostModel()


class TestDegenerateCases:
    def test_equal_phases_reduce_to_plain_chain(self):
        """theta_a == theta_b: the modulation is invisible."""
        for name in ("sw3", "sw5", "t1_3", "st1"):
            modulated = analyze_modulated(
                make_algorithm(name), 0.35, 0.35, mean_sojourn=13
            )
            plain = exact_expected_cost(make_algorithm(name), MODEL, 0.35)
            assert modulated.expected_cost(MODEL) == pytest.approx(plain, abs=1e-9)

    def test_fast_switching_is_iid_at_the_mean(self):
        """mean_sojourn = 2 makes phases i.i.d.: the stream is
        Bernoulli((theta_a+theta_b)/2)."""
        modulated = analyze_modulated(
            make_algorithm("sw5"), 0.1, 0.9, mean_sojourn=2
        )
        iid = exact_expected_cost(make_algorithm("sw5"), MODEL, 0.5)
        assert modulated.expected_cost(MODEL) == pytest.approx(iid, abs=1e-9)

    def test_statics_see_only_the_mean(self):
        for sojourn in (2, 50, 1_000):
            modulated = analyze_modulated(
                make_algorithm("st1"), 0.2, 0.6, mean_sojourn=sojourn
            )
            assert modulated.expected_cost(MODEL) == pytest.approx(
                1.0 - 0.4, abs=1e-9
            )


class TestAgainstSimulation:
    @pytest.mark.parametrize("sojourn", [5, 60, 700])
    def test_matches_bursty_workload_replay(self, sojourn):
        """The exact chain reproduces long BurstyWorkload replays."""
        workload = BurstyWorkload(0.15, 0.85, sojourn, seed=sojourn)
        schedule = workload.generate(150_000)
        simulated = replay(make_algorithm("sw5"), schedule, MODEL).mean_cost
        exact = analyze_modulated(
            make_algorithm("sw5"), 0.15, 0.85, sojourn
        ).expected_cost(MODEL)
        assert simulated == pytest.approx(exact, abs=0.012)

    def test_message_model_too(self):
        workload = BurstyWorkload(0.2, 0.8, 40, seed=3)
        schedule = workload.generate(120_000)
        model = MessageCostModel(0.5)
        simulated = replay(make_algorithm("sw3"), schedule, model).mean_cost
        exact = analyze_modulated(
            make_algorithm("sw3"), 0.2, 0.8, 40
        ).expected_cost(model)
        assert simulated == pytest.approx(exact, abs=0.012)


class TestStructure:
    def test_long_sojourns_approach_phase_mixture(self):
        """S → ∞: the chain spends each phase in its own steady state,
        so the cost tends to the mixture of the two i.i.d. costs."""
        mixture = (
            ca.expected_cost_swk(0.1, 9) + ca.expected_cost_swk(0.9, 9)
        ) / 2.0
        exact = analyze_modulated(
            make_algorithm("sw9"), 0.1, 0.9, mean_sojourn=50_000
        ).expected_cost(MODEL)
        assert exact == pytest.approx(mixture, abs=0.002)

    def test_cost_decreases_with_sojourn(self):
        costs = [
            analyze_modulated(
                make_algorithm("sw9"), 0.1, 0.9, sojourn
            ).expected_cost(MODEL)
            for sojourn in (2, 10, 100, 1_000)
        ]
        assert all(a > b for a, b in zip(costs, costs[1:]))

    def test_copy_probability_is_half_by_symmetry(self):
        """theta_b = 1 - theta_a makes the two phases mirror images, so
        the long-run replica probability is exactly 1/2."""
        analysis = analyze_modulated(make_algorithm("sw5"), 0.2, 0.8, 30)
        assert analysis.copy_probability == pytest.approx(0.5, abs=1e-9)


class TestBestWindow:
    def test_crossover_with_burstiness(self):
        fast_k, _ = best_window_for_burstiness(
            0.1, 0.9, 10, MODEL, window_sizes=(1, 3, 5, 7, 9)
        )
        slow_k, _ = best_window_for_burstiness(
            0.1, 0.9, 2_000, MODEL, window_sizes=(1, 3, 5, 7, 9)
        )
        assert fast_k < slow_k
        assert fast_k == 1  # short phases: follow the last request
        assert slow_k == 9  # long phases: the largest window offered

    def test_returned_cost_matches_direct_analysis(self):
        k, cost = best_window_for_burstiness(
            0.1, 0.9, 50, MODEL, window_sizes=(3, 5)
        )
        direct = analyze_modulated(
            make_algorithm(f"sw{k}"), 0.1, 0.9, 50
        ).expected_cost(MODEL)
        assert cost == pytest.approx(direct)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            best_window_for_burstiness(0.1, 0.9, 50, MODEL, window_sizes=())
        with pytest.raises(InvalidParameterError):
            analyze_modulated(make_algorithm("sw3"), 0.1, 0.9, 0.5)
        with pytest.raises(InvalidParameterError):
            analyze_modulated(make_algorithm("sw3"), 1.2, 0.9, 10)
