"""Unit tests for the section-9 method-selection procedure."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.selection import recommend_for_trace, recommend_method
from repro.costmodels import ConnectionCostModel, MessageCostModel
from repro.exceptions import InvalidParameterError
from repro.workload import BurstyWorkload, bernoulli_schedule

CONNECTION = ConnectionCostModel()


class TestKnownThetaConnection:
    def test_write_heavy_without_bound_is_st1(self):
        pick = recommend_method(
            CONNECTION, theta=0.8, needs_worst_case_bound=False
        )
        assert pick.algorithm == "st1"
        assert pick.expected_cost == pytest.approx(0.2)

    def test_read_heavy_without_bound_is_st2(self):
        pick = recommend_method(
            CONNECTION, theta=0.2, needs_worst_case_bound=False
        )
        assert pick.algorithm == "st2"
        assert pick.expected_cost == pytest.approx(0.2)

    def test_with_bound_upgrades_to_threshold_method(self):
        pick = recommend_method(CONNECTION, theta=0.8)
        assert pick.algorithm.startswith("t1_")
        assert pick.competitive_factor is not None
        low = recommend_method(CONNECTION, theta=0.2)
        assert low.algorithm.startswith("t2_")

    def test_upgrade_premium_is_tiny(self):
        pick = recommend_method(CONNECTION, theta=0.75)
        # EXP_T1m - EXP_ST1 = (1-theta)^m (2 theta - 1): negligible.
        assert pick.expected_cost == pytest.approx(0.25, abs=1e-3)


class TestKnownThetaMessage:
    def test_theorem6_regions(self):
        model = MessageCostModel(0.5)  # thresholds 0.5 and 0.75
        st1_pick = recommend_method(model, theta=0.9, needs_worst_case_bound=False)
        assert st1_pick.algorithm == "st1"
        st2_pick = recommend_method(model, theta=0.2, needs_worst_case_bound=False)
        assert st2_pick.algorithm == "st2"
        sw1_pick = recommend_method(model, theta=0.6)
        assert sw1_pick.algorithm == "sw1"

    def test_sw1_needs_no_upgrade(self):
        """SW1 is already competitive, so the bound flag is moot."""
        model = MessageCostModel(0.5)
        assert recommend_method(model, theta=0.6).algorithm == "sw1"

    def test_static_with_bound_upgrades(self):
        model = MessageCostModel(0.5)
        pick = recommend_method(model, theta=0.95)
        assert pick.algorithm.startswith("t1_")


class TestUnknownTheta:
    def test_connection_uses_advisor(self):
        pick = recommend_method(CONNECTION, theta=None, average_budget=0.10)
        assert pick.algorithm == "sw9"
        assert pick.competitive_factor == 10.0

    def test_tighter_budget_bigger_window(self):
        pick = recommend_method(CONNECTION, theta=None, average_budget=0.06)
        assert pick.algorithm == "sw15"

    def test_message_low_omega_is_sw1(self):
        pick = recommend_method(MessageCostModel(0.3), theta=None)
        assert pick.algorithm == "sw1"
        assert "Corollary 3" in pick.rationale

    def test_message_high_omega_uses_corollary4(self):
        pick = recommend_method(MessageCostModel(0.8), theta=None)
        assert pick.algorithm == "sw7"
        assert "Corollary 4" in pick.rationale

    def test_str_is_informative(self):
        text = str(recommend_method(CONNECTION, theta=None))
        assert "sw9" in text and "competitive" in text

    def test_invalid_theta(self):
        with pytest.raises(InvalidParameterError):
            recommend_method(CONNECTION, theta=1.5)


class TestTraceDriven:
    def test_stationary_trace_takes_static_branch(self):
        schedule = bernoulli_schedule(
            0.85, 20_000, rng=np.random.default_rng(1)
        )
        pick = recommend_for_trace(schedule, CONNECTION)
        assert pick.algorithm.startswith("t1_")

    def test_drifting_trace_takes_dynamic_branch(self):
        schedule = BurstyWorkload(0.1, 0.9, 1_000, seed=2).generate(20_000)
        pick = recommend_for_trace(schedule, CONNECTION)
        # Burstiness-aware: a sliding window sized by the exact
        # product-chain cost of the estimated phase structure.
        assert pick.algorithm.startswith("sw")
        assert int(pick.algorithm[2:]) >= 5  # long phases -> big window
        assert "product-chain" in pick.rationale

    def test_drifting_trace_plain_advisor_fallback(self):
        schedule = BurstyWorkload(0.1, 0.9, 1_000, seed=2).generate(20_000)
        pick = recommend_for_trace(
            schedule, CONNECTION, burstiness_aware=False
        )
        assert pick.algorithm == "sw9"  # the section-9 default

    def test_phase_estimate_recovers_the_generator(self):
        from repro.analysis.selection import _estimate_phases
        from repro.workload.trace import profile_trace

        schedule = BurstyWorkload(0.15, 0.85, 700, seed=6).generate(30_000)
        phases = _estimate_phases(profile_trace(schedule, window=100))
        assert phases is not None
        theta_low, theta_high, sojourn = phases
        assert theta_low == pytest.approx(0.15, abs=0.08)
        assert theta_high == pytest.approx(0.85, abs=0.08)
        assert 200 < sojourn < 2_500

    def test_single_phase_returns_none(self):
        from repro.analysis.selection import _estimate_phases
        from repro.workload.trace import profile_trace

        schedule = bernoulli_schedule(
            0.5, 20_000, rng=np.random.default_rng(8)
        )
        # Stationary at 0.5 is borderline; even if classified drifting,
        # the phase gap is < 0.1 and the estimator must decline.
        phases = _estimate_phases(profile_trace(schedule, window=100))
        assert phases is None

    def test_trace_branch_is_actually_cheaper(self):
        """End-to-end sanity: the recommended method beats the
        plausible alternative on the very trace that produced it."""
        from repro.core import make_algorithm, replay

        schedule = BurstyWorkload(0.1, 0.9, 1_000, seed=3).generate(30_000)
        pick = recommend_for_trace(schedule, CONNECTION)
        recommended = replay(
            make_algorithm(pick.algorithm), schedule, CONNECTION
        ).mean_cost
        st1 = replay(make_algorithm("st1"), schedule, CONNECTION).mean_cost
        st2 = replay(make_algorithm("st2"), schedule, CONNECTION).mean_cost
        assert recommended < min(st1, st2)
