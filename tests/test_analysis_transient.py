"""Unit tests for the transient (finite-horizon) analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import connection as ca
from repro.analysis.transient import adaptation_time, expected_cost_profile
from repro.core import make_algorithm, replay
from repro.costmodels import ConnectionCostModel, MessageCostModel
from repro.exceptions import InvalidParameterError
from repro.workload import bernoulli_schedule

MODEL = ConnectionCostModel()


class TestExpectedCostProfile:
    def test_statics_have_flat_profiles(self):
        profile = expected_cost_profile(make_algorithm("st1"), MODEL, 0.3, 10)
        assert all(cost == pytest.approx(0.7) for cost in profile.costs)
        assert profile.steady_state_cost == pytest.approx(0.7)

    def test_converges_to_steady_state(self):
        profile = expected_cost_profile(
            make_algorithm("sw5"), MODEL, 0.25, 200
        )
        assert profile.costs[-1] == pytest.approx(
            ca.expected_cost_swk(0.25, 5), abs=1e-9
        )

    def test_warm_start_begins_at_old_cost(self):
        """Immediately after the switch the cost equals the old
        steady-state *structure* priced at the new mix."""
        profile = expected_cost_profile(
            make_algorithm("sw9"), MODEL, 0.1, 30, warm_theta=0.9
        )
        # Old steady state: almost surely no copy; under theta=0.1 a
        # request is a read w.p. 0.9 and remote -> cost ~0.9.
        assert profile.costs[0] == pytest.approx(0.9, abs=0.01)
        assert profile.costs[-1] == pytest.approx(
            profile.steady_state_cost, abs=0.01
        )

    def test_structural_blindness_window(self):
        """The majority of a k-window cannot flip before (k+1)/2 new
        requests, so a cold-started SWk's expected cost is exactly
        1-theta until then."""
        for k in (3, 5, 9):
            profile = expected_cost_profile(
                make_algorithm(f"sw{k}"), MODEL, 0.3, (k + 1) // 2 + 1
            )
            floor = (k + 1) // 2
            for step in range(floor):
                assert profile.costs[step] == pytest.approx(0.7, abs=1e-12)
            assert profile.costs[floor] < 0.7

    def test_profile_matches_simulation(self):
        """The exact step-4 expected cost equals the Monte-Carlo mean
        of the 5th request's cost over many fresh runs."""
        rng = np.random.default_rng(11)
        runs = 30_000
        total = 0.0
        schedule_cache = bernoulli_schedule(0.4, 5 * runs, rng=rng)
        algorithm = make_algorithm("sw3")
        # Chop one long stream into independent 5-request prefixes.
        for i in range(runs):
            chunk = schedule_cache[5 * i : 5 * i + 5]
            result = replay(algorithm, chunk, MODEL)
            total += result.events[4].cost
        simulated = total / runs
        profile = expected_cost_profile(make_algorithm("sw3"), MODEL, 0.4, 5)
        assert simulated == pytest.approx(profile.costs[4], abs=0.01)

    def test_message_model_profiles(self):
        profile = expected_cost_profile(
            make_algorithm("sw3"), MessageCostModel(0.5), 0.5, 100
        )
        from repro.analysis import message as ma

        assert profile.costs[-1] == pytest.approx(
            ma.expected_cost_swk(0.5, 3, 0.5), abs=1e-9
        )

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            expected_cost_profile(make_algorithm("sw3"), MODEL, 0.5, 0)
        with pytest.raises(InvalidParameterError):
            expected_cost_profile(make_algorithm("sw3"), MODEL, 1.5, 5)


class TestAdaptationTime:
    def test_grows_with_window(self):
        times = [
            adaptation_time(
                make_algorithm(name), MODEL, 0.9, 0.1, max_horizon=200
            )
            for name in ("sw1", "sw3", "sw9")
        ]
        assert times[0] < times[1] < times[2]

    def test_sw1_adapts_in_one_request(self):
        assert adaptation_time(make_algorithm("sw1"), MODEL, 0.9, 0.1) == 1

    def test_statics_never_need_to_adapt(self):
        assert adaptation_time(make_algorithm("st1"), MODEL, 0.9, 0.1) == 0

    def test_respects_majority_flip_floor(self):
        for k in (3, 9):
            settle = adaptation_time(
                make_algorithm(f"sw{k}"), MODEL, 0.95, 0.05, max_horizon=200
            )
            assert settle >= (k + 1) // 2

    def test_raises_when_horizon_too_short(self):
        with pytest.raises(InvalidParameterError):
            adaptation_time(
                make_algorithm("sw9"), MODEL, 0.9, 0.1, max_horizon=3
            )

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            adaptation_time(make_algorithm("sw3"), MODEL, 0.9, 0.1, epsilon=0.0)
