"""Property tests for the batched multi-schedule kernels.

The contract under test, hypothesis-swept rather than example-based:

* batched == vectorized == reference, byte-identically, for every
  algorithm the kernels cover — totals, counts, and (materialized)
  per-request classifications;
* ``execute_batch`` handles ragged batches and uncovered algorithms by
  per-spec fallback, every member byte-identical to a lone engine run;
* the k/m/omega parameter scans reproduce their brute-force loops
  exactly (the sufficient statistics lose nothing);
* the sweep executor's batched path is invisible in outcomes (serial
  equals parallel equals per-task) and visible in its counters.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.batched import (
    batched_counts,
    batched_run_arrays,
    batched_totals,
    scan_omega_totals,
    scan_threshold_counts,
    scan_window_counts,
    stack_write_masks,
    supports,
)
from repro.core.registry import make_algorithm
from repro.core.vectorized import EVENT_KIND_ORDER
from repro.costmodels import ConnectionCostModel, MessageCostModel
from repro.engine import (
    BatchSpec,
    CounterInstrumentation,
    SweepExecutor,
    execute_batch,
    run,
    run_batched_masks,
)
from repro.engine.base import RunSpec
from repro.engine.parallel import EngineTask, ScheduleSpec
from repro.exceptions import InvalidParameterError
from repro.types import Schedule

MODEL = ConnectionCostModel()

BATCHED_NAMES = (
    "st1", "st2", "sw1", "sw3", "sw9", "sw15", "t1_1", "t1_4", "t2_3",
)


@st.composite
def schedule_batches(draw, max_rows=5, max_length=60):
    """A non-ragged batch: B schedule strings of one shared length."""
    length = draw(st.integers(min_value=0, max_value=max_length))
    rows = draw(st.integers(min_value=1, max_value=max_rows))
    return [
        draw(st.text(alphabet="rw", min_size=length, max_size=length))
        for _ in range(rows)
    ]


class TestKernelEquivalence:
    @given(texts=schedule_batches())
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_batched_rows_equal_solo_backends(self, algorithm_name, texts):
        """Each batch row is byte-identical to reference & vectorized."""
        if not supports(algorithm_name):
            return
        schedules = [Schedule.from_string(text) for text in texts]
        writes = stack_write_masks(schedules)
        results = run_batched_masks(
            algorithm_name, writes, [MODEL] * len(schedules)
        )
        for schedule, batched in zip(schedules, results):
            reference = run(algorithm_name, schedule, MODEL,
                            backend="reference", stream=True)
            assert batched.total_cost == reference.total_cost
            assert batched.event_counts == reference.event_counts
            assert batched.scheme_changes == reference.scheme_changes

    @given(texts=schedule_batches(), warmup=st.integers(0, 10))
    @settings(max_examples=30, deadline=None)
    def test_warmup_and_materialization(self, texts, warmup):
        """Non-stream batched rows materialize the reference events."""
        schedules = [Schedule.from_string(text) for text in texts]
        if warmup > len(schedules[0]):
            warmup = len(schedules[0])
        writes = stack_write_masks(schedules)
        for name in ("sw3", "t1_2"):
            results = run_batched_masks(
                name, writes, [MODEL] * len(schedules),
                warmup=warmup, stream=False,
            )
            for schedule, batched in zip(schedules, results):
                reference = run(name, schedule, MODEL,
                                backend="reference", warmup=warmup)
                assert batched.total_cost == reference.total_cost
                assert batched.event_kinds == reference.event_kinds
                assert batched.events == reference.events
                assert batched.schemes == reference.schemes

    def test_per_row_cost_models(self):
        """Counts are model-independent; each row prices its own."""
        schedules = [Schedule.from_string("rwrwrrw")] * 3
        models = [MessageCostModel(omega) for omega in (0.0, 0.4, 1.0)]
        results = run_batched_masks("sw3", stack_write_masks(schedules), models)
        for schedule, model, batched in zip(schedules, models, results):
            solo = run("sw3", schedule, model, stream=True)
            assert batched.total_cost == solo.total_cost

    def test_forced_batched_backend(self):
        result = run("sw9", Schedule.from_string("rwrwr"), MODEL,
                     backend="batched")
        vectorized = run("sw9", Schedule.from_string("rwrwr"), MODEL,
                         backend="vectorized")
        assert result.backend_name == "batched"
        assert result.total_cost == vectorized.total_cost
        assert result.event_kinds == vectorized.event_kinds


class TestExecuteBatch:
    def _spec(self, name, text, **kwargs):
        return RunSpec(
            algorithm=make_algorithm(name),
            algorithm_name=name,
            schedule=Schedule.from_string(text),
            cost_model=MODEL,
            stream=True,
            **kwargs,
        )

    def test_ragged_batch_and_fallback(self):
        """Mixed lengths and uncovered algorithms still all complete,
        each member byte-identical to running it alone."""
        specs = [
            self._spec("sw9", "rwrw"),
            self._spec("sw9", "rwrwrrw"),        # different length
            self._spec("sw1", "rwrw"),           # different algorithm
            self._spec("sw1-unoptimized", "rwrw"),  # no batched kernel
            self._spec("st1", ""),               # empty schedule
        ]
        results = execute_batch(BatchSpec(runs=tuple(specs)))
        assert [r.backend_name for r in results] == [
            "batched", "batched", "batched", "reference", "batched"
        ]
        for spec, result in zip(specs, results):
            solo = run(spec.algorithm_name, spec.schedule, MODEL, stream=True)
            assert result.total_cost == solo.total_cost
            assert result.event_counts == solo.event_counts

    def test_group_of_one_same_reason_as_large_group(self):
        """A run's outcome must not depend on its chunk-mates."""
        lone = execute_batch([self._spec("sw9", "rwr")])
        grouped = execute_batch(
            [self._spec("sw9", "rwr")] + [self._spec("sw9", "wrw")] * 4
        )
        assert lone[0].dispatch_reason == grouped[0].dispatch_reason
        assert lone[0].total_cost == grouped[0].total_cost

    def test_batch_spec_validates_members(self):
        with pytest.raises(InvalidParameterError):
            BatchSpec(runs=("not a spec",))

    def test_stack_write_masks_rejects_ragged(self):
        with pytest.raises(InvalidParameterError):
            stack_write_masks([Schedule.from_string("rw"),
                               Schedule.from_string("rwr")])


class TestParameterScans:
    @given(texts=schedule_batches(max_rows=4, max_length=50),
           warmup=st.integers(0, 5))
    @settings(max_examples=30, deadline=None)
    def test_k_scan_equals_per_kernel_loop(self, texts, warmup):
        writes = stack_write_masks(
            [Schedule.from_string(text) for text in texts]
        )
        if warmup > writes.shape[1]:
            warmup = writes.shape[1]
        ks = [1, 3, 5, 9]
        scan = scan_window_counts(writes, ks, warmup=warmup)
        for index, k in enumerate(ks):
            name = "sw1" if k == 1 else f"sw{k}"
            codes, _ = batched_run_arrays(name, writes)
            assert np.array_equal(scan[index], batched_counts(codes, warmup))

    @given(texts=schedule_batches(max_rows=4, max_length=50),
           warmup=st.integers(0, 5),
           method=st.sampled_from(["t1", "t2"]))
    @settings(max_examples=30, deadline=None)
    def test_m_scan_equals_per_kernel_loop(self, texts, warmup, method):
        writes = stack_write_masks(
            [Schedule.from_string(text) for text in texts]
        )
        if warmup > writes.shape[1]:
            warmup = writes.shape[1]
        ms = [1, 2, 3, 7]
        scan = scan_threshold_counts(method, writes, ms, warmup=warmup)
        for index, m in enumerate(ms):
            codes, _ = batched_run_arrays(f"{method}_{m}", writes)
            assert np.array_equal(scan[index], batched_counts(codes, warmup))

    @given(texts=schedule_batches(max_rows=4, max_length=50))
    @settings(max_examples=30, deadline=None)
    def test_omega_scan_equals_engine_totals(self, texts):
        """Affine reuse of the counts is byte-identical to re-running
        the engine under each omega's model."""
        schedules = [Schedule.from_string(text) for text in texts]
        writes = stack_write_masks(schedules)
        codes, _ = batched_run_arrays("sw3", writes)
        counts = batched_counts(codes)
        omegas = [0.0, 0.15, 0.5, 0.95, 1.0]
        totals = scan_omega_totals(counts, omegas)
        for index, omega in enumerate(omegas):
            model = MessageCostModel(omega)
            for row, schedule in enumerate(schedules):
                solo = run("sw3", schedule, model, stream=True)
                assert totals[index, row] == solo.total_cost

    def test_batched_totals_matches_counts_order(self):
        counts = np.array([[3, 1, 0, 2, 0, 1], [0, 0, 0, 0, 0, 0]])
        model = MessageCostModel(0.3)
        totals = batched_totals(counts, model)
        expected = sum(
            count * model.price(kind)
            for kind, count in zip(EVENT_KIND_ORDER, counts[0])
            if count
        )
        assert totals[0] == expected
        assert totals[1] == 0.0


class TestSweepExecutorBatching:
    def _tasks(self):
        return [
            EngineTask(
                name,
                ScheduleSpec(0.25 + 0.1 * index, 400, seed=50 + index),
                MODEL,
                warmup=100,
                tag=(name, index),
            )
            for name in ("sw9", "t1_4")
            for index in range(4)
        ]

    def test_batched_outcomes_identical_serial_vs_parallel(self):
        serial = SweepExecutor(jobs=1).map(self._tasks())
        parallel = SweepExecutor(jobs=2).map(self._tasks())
        assert [o.identity() for o in serial] == [
            o.identity() for o in parallel
        ]
        assert all(o.backend_name == "batched" for o in serial)

    def test_executor_reports_batches(self):
        executor = SweepExecutor(jobs=1)
        executor.map(self._tasks())
        dispatch = executor.report()["dispatch"]
        assert dispatch["batches"] >= 2
        assert dispatch["batched_runs"] == 8

    def test_instrumentation_on_batch_counter(self):
        counters = CounterInstrumentation()
        writes = stack_write_masks([Schedule.from_string("rwrw")] * 3)
        run_batched_masks("sw3", writes, [MODEL] * 3,
                          instrumentation=counters)
        assert counters.batches == 1
        assert counters.batched_runs == 3
        assert counters.runs == 3
