"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_validates_experiment_id(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "not-an-experiment"])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate", "sw9"])
        assert args.theta == 0.3
        assert args.model == "connection"


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out
        assert "t-conclusion" in out

    def test_simulate_connection(self, capsys):
        code = main(
            ["simulate", "sw9", "--theta", "0.3", "--length", "2000",
             "--seed", "42"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "mean cost/req" in out
        assert "sw9" in out

    def test_simulate_message_model(self, capsys):
        code = main(
            ["simulate", "sw1", "--model", "message", "--omega", "0.4",
             "--length", "1000", "--seed", "1"]
        )
        assert code == 0
        assert "message" in capsys.readouterr().out

    def test_simulate_replicas_failover_campaign(self, capsys):
        code = main(
            ["simulate", "sw3", "--length", "300", "--seed", "7",
             "--replicas", "3", "--faults", "crash=0@5,seed=3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "replica set" in out
        assert "1 failover(s)" in out
        assert "promoted" in out

    def test_simulate_replicas_matches_single_sc(self, capsys):
        main(["simulate", "sw3", "--length", "300", "--seed", "7",
              "--backend", "protocol"])
        single = capsys.readouterr().out
        main(["simulate", "sw3", "--length", "300", "--seed", "7",
              "--replicas", "3"])
        replicated = capsys.readouterr().out
        # The logical cost lines are byte-identical; only the wire
        # summary differs.
        for line in single.splitlines():
            if "cost" in line:
                assert line in replicated

    def test_simulate_rejects_bad_replica_count(self, capsys):
        assert main(["simulate", "sw3", "--length", "100",
                     "--replicas", "7"]) == 2

    def test_simulate_deterministic_with_seed(self, capsys):
        main(["simulate", "st1", "--length", "500", "--seed", "9"])
        first = capsys.readouterr().out
        main(["simulate", "st1", "--length", "500", "--seed", "9"])
        second = capsys.readouterr().out
        assert first == second

    def test_advise_connection(self, capsys):
        assert main(["advise", "--target", "0.10"]) == 0
        out = capsys.readouterr().out
        assert "k = 9" in out

    def test_advise_message(self, capsys):
        assert main(["advise", "--target", "0.5", "--model", "message",
                     "--omega", "0.2"]) == 0
        assert "k = 1" in capsys.readouterr().out

    def test_run_quick_experiment(self, capsys):
        assert main(["run", "t-conclusion", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0

    def test_choose_known_theta(self, capsys):
        assert main(["choose", "--theta", "0.8"]) == 0
        assert "t1_" in capsys.readouterr().out

    def test_choose_unknown_theta_message(self, capsys):
        assert main(["choose", "--model", "message", "--omega", "0.8"]) == 0
        assert "sw7" in capsys.readouterr().out

    def test_choose_no_worst_case(self, capsys):
        assert main(["choose", "--theta", "0.8", "--no-worst-case"]) == 0
        assert "st1" in capsys.readouterr().out

    def test_serve_self_test_with_replicas(self, capsys):
        code = main(
            ["serve", "--self-test", "--sessions", "100", "--rounds", "1",
             "--ops-per-round", "5", "--shards", "4", "--replay-sample", "2",
             "--replicas", "3", "--failover-drills", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "failover drills" in out
        assert "byte-identical" in out

    def test_trace_command(self, tmp_path, capsys):
        import numpy as np

        from repro.workload import bernoulli_schedule, save_trace

        path = tmp_path / "steady.trace"
        save_trace(
            bernoulli_schedule(0.2, 5_000, rng=np.random.default_rng(3)),
            path,
        )
        assert main(["trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "stationary" in out
        assert "recommendation" in out
