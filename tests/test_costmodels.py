"""Unit tests for the connection and message cost models."""

from __future__ import annotations

import pytest

from repro.costmodels import (
    ConnectionCostModel,
    CostBreakdown,
    CostEventKind,
    MessageCostModel,
)
from repro.costmodels.base import EVENT_RESOURCES
from repro.exceptions import InvalidParameterError

FREE = (CostEventKind.LOCAL_READ, CostEventKind.WRITE_NO_COPY)
CHARGEABLE = (
    CostEventKind.REMOTE_READ,
    CostEventKind.WRITE_PROPAGATED,
    CostEventKind.WRITE_PROPAGATED_DEALLOCATE,
    CostEventKind.WRITE_DELETE_REQUEST,
)


class TestConnectionModel:
    def test_free_events(self, connection_model):
        for kind in FREE:
            assert connection_model.price(kind) == 0.0

    def test_every_chargeable_event_is_one_connection(self, connection_model):
        # Section 5: every remote interaction fits one minimum-length
        # connection.
        for kind in CHARGEABLE:
            assert connection_model.price(kind) == 1.0

    def test_total(self, connection_model):
        kinds = [CostEventKind.REMOTE_READ, CostEventKind.LOCAL_READ,
                 CostEventKind.WRITE_PROPAGATED]
        assert connection_model.total(kinds) == 2.0

    def test_equality(self):
        assert ConnectionCostModel() == ConnectionCostModel()

    def test_offline_parameters(self, connection_model):
        assert connection_model.remote_read_cost == 1.0
        assert connection_model.write_propagate_cost == 1.0
        assert connection_model.acquire_cost == 1.0
        assert connection_model.release_cost == 0.0


class TestMessageModel:
    def test_prices_section3(self):
        model = MessageCostModel(0.25)
        assert model.price(CostEventKind.LOCAL_READ) == 0.0
        assert model.price(CostEventKind.WRITE_NO_COPY) == 0.0
        assert model.price(CostEventKind.REMOTE_READ) == 1.25
        assert model.price(CostEventKind.WRITE_PROPAGATED) == 1.0
        assert model.price(CostEventKind.WRITE_PROPAGATED_DEALLOCATE) == 1.25
        assert model.price(CostEventKind.WRITE_DELETE_REQUEST) == 0.25

    @pytest.mark.parametrize("omega", [-0.1, 1.1, 5.0])
    def test_rejects_out_of_range_omega(self, omega):
        with pytest.raises(InvalidParameterError):
            MessageCostModel(omega)

    def test_omega_zero_makes_control_free(self):
        model = MessageCostModel(0.0)
        assert model.price(CostEventKind.WRITE_DELETE_REQUEST) == 0.0
        assert model.price(CostEventKind.REMOTE_READ) == 1.0

    def test_omega_one_equalizes_message_costs(self):
        model = MessageCostModel(1.0)
        assert model.price(CostEventKind.REMOTE_READ) == 2.0
        assert model.price(CostEventKind.WRITE_DELETE_REQUEST) == 1.0

    def test_equality_by_omega(self):
        assert MessageCostModel(0.3) == MessageCostModel(0.3)
        assert MessageCostModel(0.3) != MessageCostModel(0.4)

    def test_charge_wraps_event(self, message_model):
        event = message_model.charge(CostEventKind.REMOTE_READ)
        assert event.kind is CostEventKind.REMOTE_READ
        assert event.cost == 1.0 + message_model.omega

    def test_release_is_free_by_default(self, message_model):
        assert message_model.release_cost == 0.0


class TestCostBreakdown:
    def test_addition(self):
        total = CostBreakdown(1, 2, 3) + CostBreakdown(4, 5, 6)
        assert total == CostBreakdown(5, 7, 9)

    def test_event_resources_table_is_consistent(self):
        # Each event's physical resources: a remote read is one
        # control + one data message in one connection, etc.
        remote = EVENT_RESOURCES[CostEventKind.REMOTE_READ]
        assert (remote.connections, remote.data_messages,
                remote.control_messages) == (1, 1, 1)
        propagate = EVENT_RESOURCES[CostEventKind.WRITE_PROPAGATED]
        assert (propagate.connections, propagate.data_messages,
                propagate.control_messages) == (1, 1, 0)
        delete = EVENT_RESOURCES[CostEventKind.WRITE_DELETE_REQUEST]
        assert (delete.connections, delete.data_messages,
                delete.control_messages) == (1, 0, 1)

    def test_message_price_matches_resources(self):
        """In the message model, price == data + omega * control."""
        for omega in (0.0, 0.3, 1.0):
            model = MessageCostModel(omega)
            for kind, resources in EVENT_RESOURCES.items():
                expected = resources.data_messages + omega * resources.control_messages
                assert model.price(kind) == pytest.approx(expected)

    def test_connection_price_matches_resources(self):
        """In the connection model, price == number of connections."""
        model = ConnectionCostModel()
        for kind, resources in EVENT_RESOURCES.items():
            assert model.price(kind) == resources.connections
