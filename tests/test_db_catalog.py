"""Unit tests for the multi-item database layer (repro.db)."""

from __future__ import annotations

import pytest

from repro.analysis import connection as ca
from repro.costmodels import ConnectionCostModel, MessageCostModel
from repro.db import (
    AdvisorPolicy,
    MobileDatabase,
    PerItemPolicy,
    UniformPolicy,
)
from repro.exceptions import InvalidParameterError, UnknownAlgorithmError
from repro.types import AllocationScheme, Operation, Request, Schedule
from repro.workload import CatalogWorkload, ItemRates

MODEL = ConnectionCostModel()


def request(item: str, op: Operation) -> Request:
    return Request(op, objects=(item,))


class TestPolicies:
    def test_uniform_policy_builds_fresh_instances(self):
        policy = UniformPolicy("sw9")
        a = policy.algorithm_for("x")
        b = policy.algorithm_for("y")
        assert a is not b
        assert a.name == "sw9"

    def test_uniform_policy_validates_name(self):
        with pytest.raises(UnknownAlgorithmError):
            UniformPolicy("quantum")

    def test_per_item_policy(self):
        policy = PerItemPolicy({"hot": "st2", "cold": "st1"}, default="sw9")
        assert policy.algorithm_for("hot").name == "st2"
        assert policy.algorithm_for("cold").name == "st1"
        assert policy.algorithm_for("other").name == "sw9"

    def test_per_item_policy_validates_all_names(self):
        with pytest.raises(UnknownAlgorithmError):
            PerItemPolicy({"x": "bogus"})

    def test_advisor_policy_connection(self):
        policy = AdvisorPolicy(0.10, ConnectionCostModel())
        assert policy.window_size == 9
        assert policy.algorithm_for("x").name == "sw9"

    def test_advisor_policy_low_omega_picks_sw1(self):
        policy = AdvisorPolicy(0.5, MessageCostModel(0.2))
        assert policy.window_size == 1
        assert policy.algorithm_for("x").name == "sw1"

    def test_describe(self):
        assert "sw9" in UniformPolicy("sw9").describe()
        assert "advisor" in AdvisorPolicy(0.10, MODEL).describe()


class TestMobileDatabase:
    def test_requires_items(self):
        with pytest.raises(InvalidParameterError):
            MobileDatabase([], UniformPolicy("st1"), MODEL)

    def test_rejects_duplicates(self):
        with pytest.raises(InvalidParameterError):
            MobileDatabase(["a", "a"], UniformPolicy("st1"), MODEL)

    def test_routes_by_item(self):
        db = MobileDatabase(["a", "b"], UniformPolicy("st1"), MODEL)
        db.process(request("a", Operation.READ))
        assert db.report("a").requests == 1
        assert db.report("b").requests == 0

    def test_rejects_unknown_item(self):
        db = MobileDatabase(["a"], UniformPolicy("st1"), MODEL)
        with pytest.raises(InvalidParameterError):
            db.process(request("z", Operation.READ))

    def test_rejects_multi_object_requests(self):
        db = MobileDatabase(["a", "b"], UniformPolicy("st1"), MODEL)
        with pytest.raises(InvalidParameterError):
            db.process(Request(Operation.READ, objects=("a", "b")))
        with pytest.raises(InvalidParameterError):
            db.process(Request(Operation.READ))

    def test_charges_match_single_item_replay(self):
        """Per-item independence: the catalog's total equals the sum of
        single-item replays of the per-item subsequences."""
        from repro.core import make_algorithm, replay

        workload = CatalogWorkload(
            {
                "x": ItemRates(read_rate=8.0, write_rate=2.0),
                "y": ItemRates(read_rate=1.0, write_rate=9.0),
            },
            seed=5,
        )
        schedule = workload.generate(4_000)
        db = MobileDatabase(["x", "y"], UniformPolicy("sw5"), MODEL)
        total = db.run(schedule)
        expected = 0.0
        for item in ("x", "y"):
            subsequence = Schedule(
                r for r in schedule if r.objects == (item,)
            )
            expected += replay(
                make_algorithm("sw5"), subsequence, MODEL
            ).total_cost
        assert total == pytest.approx(expected)

    def test_item_costs_converge_to_theory(self):
        workload = CatalogWorkload(
            {
                "reads": ItemRates(read_rate=9.0, write_rate=1.0),
                "writes": ItemRates(read_rate=1.0, write_rate=9.0),
            },
            seed=6,
        )
        db = MobileDatabase(
            ["reads", "writes"], UniformPolicy("sw9"), MODEL
        )
        db.run(workload.generate(40_000))
        for item in ("reads", "writes"):
            report = db.report(item)
            theta = workload.theta(item)
            assert report.mean_cost == pytest.approx(
                ca.expected_cost_swk(theta, 9), abs=0.02
            )
            assert report.observed_theta == pytest.approx(theta, abs=0.02)

    def test_replicated_items_tracks_schemes(self):
        db = MobileDatabase(["a", "b"], PerItemPolicy({"a": "st2", "b": "st1"}), MODEL)
        assert db.replicated_items() == ["a"]

    def test_reports_sorted_by_cost(self):
        db = MobileDatabase(["cheap", "dear"], UniformPolicy("st1"), MODEL)
        db.process(request("dear", Operation.READ))
        db.process(request("dear", Operation.READ))
        db.process(request("cheap", Operation.READ))
        reports = db.reports()
        assert [r.item for r in reports] == ["dear", "cheap"]

    def test_mean_cost_empty(self):
        db = MobileDatabase(["a"], UniformPolicy("st1"), MODEL)
        assert db.mean_cost() == 0.0

    def test_scheme_changes_counted(self):
        db = MobileDatabase(["a"], UniformPolicy("sw1"), MODEL)
        db.process(request("a", Operation.READ))   # allocate
        db.process(request("a", Operation.WRITE))  # deallocate
        assert db.report("a").scheme_changes == 2
        assert db.report("a").current_scheme is AllocationScheme.ONE_COPY


class TestCatalogWorkload:
    def test_items_sorted(self):
        workload = CatalogWorkload(
            {"b": ItemRates(1, 1), "a": ItemRates(1, 1)}, seed=1
        )
        assert workload.items == ["a", "b"]

    def test_item_frequencies_proportional_to_rates(self):
        workload = CatalogWorkload(
            {"hot": ItemRates(30, 10), "cold": ItemRates(3, 1)}, seed=2
        )
        schedule = workload.generate(40_000)
        hot = sum(1 for r in schedule if r.objects == ("hot",))
        assert hot / len(schedule) == pytest.approx(0.9, abs=0.01)

    def test_timestamps_increase(self):
        workload = CatalogWorkload({"a": ItemRates(5, 5)}, seed=3)
        schedule = workload.generate(100)
        times = [r.timestamp for r in schedule]
        assert all(x < y for x, y in zip(times, times[1:]))

    def test_theta_lookup(self):
        workload = CatalogWorkload({"a": ItemRates(3, 1)}, seed=4)
        assert workload.theta("a") == 0.25
        with pytest.raises(InvalidParameterError):
            workload.theta("b")

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            CatalogWorkload({}, seed=1)
        with pytest.raises(InvalidParameterError):
            ItemRates(read_rate=-1, write_rate=1)
        with pytest.raises(InvalidParameterError):
            ItemRates(read_rate=0, write_rate=0)
