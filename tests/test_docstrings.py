"""Quality gate: every public item in the library is documented.

Deliverable (e) requires doc comments on every public item; this test
makes the requirement executable so it cannot regress.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro


def _walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            # Importing the entry-point module runs the CLI.
            continue
        yield importlib.import_module(info.name)


def _public_members(module):
    for name in dir(module):
        if name.startswith("_"):
            continue
        member = getattr(module, name)
        if inspect.ismodule(member):
            continue
        # Only report items defined in this package (not numpy etc.).
        defined_in = getattr(member, "__module__", "") or ""
        if not defined_in.startswith("repro"):
            continue
        yield name, member


def test_every_module_has_a_docstring():
    undocumented = [
        module.__name__ for module in _walk_modules() if not module.__doc__
    ]
    assert not undocumented, f"modules without docstrings: {undocumented}"


def test_every_public_class_and_function_is_documented():
    undocumented = []
    for module in _walk_modules():
        for name, member in _public_members(module):
            if inspect.isclass(member) or inspect.isfunction(member):
                if not inspect.getdoc(member):
                    undocumented.append(f"{module.__name__}.{name}")
    assert not undocumented, f"undocumented public items: {sorted(set(undocumented))}"


def test_public_methods_are_documented():
    undocumented = []
    for module in _walk_modules():
        for name, member in _public_members(module):
            if not inspect.isclass(member):
                continue
            for method_name, method in inspect.getmembers(
                member, predicate=inspect.isfunction
            ):
                if method_name.startswith("_"):
                    continue
                if (getattr(method, "__module__", "") or "").startswith(
                    "repro"
                ) and not inspect.getdoc(method):
                    undocumented.append(
                        f"{module.__name__}.{name}.{method_name}"
                    )
    assert not undocumented, (
        f"undocumented public methods: {sorted(set(undocumented))}"
    )
