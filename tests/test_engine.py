"""Tests for the unified execution engine (repro.engine).

The engine is the only sanctioned way to execute a schedule; these
tests pin down its contract:

* dispatch rules — auto picks the vectorized kernels when they cover
  the algorithm, falls back to the reference replay otherwise, never
  auto-selects the protocol simulator;
* the cross-backend equivalence invariant — all three backends classify
  every request into the identical CostEventKind sequence, which makes
  per-kind counts equal and (through ``total_from_counts``) the float
  totals byte-identical;
* streaming, warmup and instrumentation semantics.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import make_algorithm, replay
from repro.core.estimators import EwmaAllocator
from repro.core.vectorized import supports as vectorized_supports
from repro.costmodels import ConnectionCostModel, MessageCostModel
from repro.engine import (
    AUTO,
    CounterInstrumentation,
    EngineResult,
    Instrumentation,
    TraceInstrumentation,
    available_backends,
    get_backend,
    run,
    total_from_counts,
    value_for_write,
    wants_per_request,
)
from repro.engine.versioning import INITIAL_VALUE, INITIAL_VERSION
from repro.exceptions import InvalidParameterError, UnknownAlgorithmError
from repro.types import Schedule

MODEL = ConnectionCostModel()

schedule_texts = st.text(alphabet="rw", min_size=0, max_size=100)


class TestRegistry:
    def test_five_backends_registered(self):
        assert available_backends() == [
            "reference", "vectorized", "protocol", "batched", "numba"
        ]

    def test_unknown_backend_name(self):
        with pytest.raises(InvalidParameterError):
            get_backend("quantum")

    def test_protocol_supports_matches_deciders(self):
        protocol = get_backend("protocol")
        assert protocol.supports("sw9")
        assert protocol.supports("t1_4")
        assert not protocol.supports("bogus")


class TestDispatch:
    def test_auto_picks_vectorized_when_covered(self, algorithm_name):
        schedule = Schedule.from_string("rrwwrw")
        result = run(algorithm_name, schedule, MODEL)
        if vectorized_supports(algorithm_name):
            assert result.backend_name == "vectorized"
        else:
            assert result.backend_name == "reference"

    def test_auto_falls_back_for_stateful_estimators(self):
        result = run(EwmaAllocator(0.2), Schedule.from_string("rwrw"), MODEL)
        assert result.backend_name == "reference"
        assert "fallback" in result.dispatch_reason

    def test_auto_never_picks_protocol(self, algorithm_name):
        result = run(algorithm_name, Schedule.from_string("rw"), MODEL)
        assert result.backend_name != "protocol"

    def test_continued_run_pins_reference(self):
        algorithm = make_algorithm("sw9")
        result = run(algorithm, Schedule.from_string("rrr"), MODEL, fresh=False)
        assert result.backend_name == "reference"

    def test_continued_run_keeps_live_state(self):
        """Two engine runs with fresh=False equal one longer run."""
        algorithm = make_algorithm("sw3")
        first = run(algorithm, Schedule.from_string("rrww"), MODEL, fresh=False)
        second = run(algorithm, Schedule.from_string("wrrw"), MODEL, fresh=False)
        whole = run("sw3", Schedule.from_string("rrwwwrrw"), MODEL,
                    backend="reference")
        assert first.event_kinds + second.event_kinds == whole.event_kinds

    def test_forced_backend_honoured(self):
        schedule = Schedule.from_string("rwrw")
        for name in ("reference", "vectorized", "protocol", "batched",
                     "numba"):
            assert run("sw9", schedule, MODEL, backend=name).backend_name == name

    def test_forced_vectorized_rejects_uncovered_algorithm(self):
        with pytest.raises(UnknownAlgorithmError):
            run(EwmaAllocator(0.2), Schedule.from_string("rw"), MODEL,
                backend="vectorized")

    def test_fresh_false_rejects_non_reference(self):
        with pytest.raises(InvalidParameterError):
            run("sw9", Schedule.from_string("rw"), MODEL,
                backend="vectorized", fresh=False)

    def test_rejects_non_algorithm(self):
        with pytest.raises(InvalidParameterError):
            run(42, Schedule.from_string("rw"), MODEL)

    def test_string_names_normalized(self):
        result = run("  SW9 ", Schedule.from_string("rw"), MODEL)
        assert result.algorithm_name == "sw9"


class TestEquivalenceWithReplay:
    """The engine's reference path is the replay of record, verbatim."""

    def test_matches_replay_result(self, algorithm_name):
        schedule = Schedule.from_string("rrwwrwrrrwwwrwr" * 4)
        old = replay(make_algorithm(algorithm_name), schedule, MODEL)
        new = run(algorithm_name, schedule, MODEL, backend="reference")
        assert new.event_kinds == tuple(e.kind for e in old.events)
        assert new.total_cost == pytest.approx(old.total_cost)
        assert new.event_counts == old.event_counts()
        assert new.scheme_changes == old.allocation_changes()
        assert new.schemes == old.schemes

    def test_auto_total_is_byte_identical_to_reference(self, algorithm_name):
        schedule = Schedule.from_string("rwwrrrwwrwrr" * 10)
        model = MessageCostModel(0.35)
        auto = run(algorithm_name, schedule, model)
        reference = run(algorithm_name, schedule, model, backend="reference")
        assert auto.total_cost == reference.total_cost  # not approx: ==
        assert auto.event_counts == reference.event_counts
        assert auto.event_kinds == reference.event_kinds
        assert auto.scheme_changes == reference.scheme_changes
        assert auto.schemes == reference.schemes


class TestCrossBackendEquivalence:
    """The central invariant: every backend produces the identical
    per-request CostEventKind classification."""

    @given(text=schedule_texts)
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_all_backends_agree(self, algorithm_name, text):
        schedule = Schedule.from_string(text)
        reference = run(algorithm_name, schedule, MODEL, backend="reference")
        backends = [reference]
        if vectorized_supports(algorithm_name):
            backends.append(
                run(algorithm_name, schedule, MODEL, backend="vectorized")
            )
        backends.append(run(algorithm_name, schedule, MODEL, backend="protocol"))
        for other in backends[1:]:
            assert other.event_kinds == reference.event_kinds
            assert other.event_counts == reference.event_counts
            assert other.total_cost == reference.total_cost  # byte-identical

    @given(text=schedule_texts)
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_agreement_under_message_model(self, algorithm_name, text):
        schedule = Schedule.from_string(text)
        model = MessageCostModel(0.4)
        reference = run(algorithm_name, schedule, model, backend="reference")
        protocol = run(algorithm_name, schedule, model, backend="protocol")
        assert protocol.event_kinds == reference.event_kinds
        assert protocol.total_cost == reference.total_cost


class TestStreaming:
    def test_stream_skips_materialization(self):
        for backend in ("reference", "vectorized", "protocol"):
            result = run("sw9", Schedule.from_string("rwrwrw"), MODEL,
                         backend=backend, stream=True)
            assert result.events is None
            assert result.event_kinds is None
            assert result.schemes is None
            assert result.event_counts

    def test_stream_and_full_agree_on_aggregates(self):
        schedule = Schedule.from_string("rrwwrw" * 20)
        full = run("t1_4", schedule, MODEL)
        streamed = run("t1_4", schedule, MODEL, stream=True)
        assert streamed.total_cost == full.total_cost
        assert streamed.event_counts == full.event_counts
        assert streamed.scheme_changes == full.scheme_changes


class TestWarmup:
    def test_warmup_excluded_from_aggregates(self):
        schedule = Schedule.from_string("w" * 5 + "r" * 5)
        for backend in ("reference", "vectorized", "protocol"):
            burned = run("st2", schedule, MODEL, backend=backend, warmup=5)
            assert burned.counted_requests == 5
            # st2 pays 1 per write, 0 per read: the writes are burned.
            assert burned.total_cost == 0.0
            assert sum(burned.event_counts.values()) == 5

    def test_warmup_validation(self):
        schedule = Schedule.from_string("rw")
        with pytest.raises(InvalidParameterError):
            run("sw9", schedule, MODEL, warmup=-1)
        with pytest.raises(InvalidParameterError):
            run("sw9", schedule, MODEL, warmup=3)

    def test_mean_cost_uses_counted_requests(self):
        schedule = Schedule.from_string("wwrr")
        result = run("st2", schedule, MODEL, warmup=2)
        assert result.mean_cost == 0.0
        assert len(result) == 4


class TestInstrumentation:
    def test_counters_aggregate_across_runs_and_backends(self):
        counters = CounterInstrumentation()
        schedule = Schedule.from_string("rwrwrw")
        run("sw9", schedule, MODEL, instrumentation=counters)
        run(EwmaAllocator(0.2), schedule, MODEL, instrumentation=counters)
        run("sw9", schedule, MODEL, backend="protocol",
            instrumentation=counters)
        assert counters.runs == 3
        assert counters.requests == 18
        assert counters.backend_runs == {
            "vectorized": 1, "reference": 1, "protocol": 1,
        }
        assert counters.total_cost > 0.0
        assert counters.wall_seconds > 0.0
        assert len(counters.dispatch_log) == 3
        summary = counters.summary()
        assert summary["runs"] == 3
        assert summary["backend_runs"]["vectorized"] == 1

    def test_counter_does_not_force_per_request_loop(self):
        assert not wants_per_request(Instrumentation())
        assert not wants_per_request(CounterInstrumentation())
        assert wants_per_request(TraceInstrumentation())

    def test_trace_identical_on_every_backend(self):
        schedule = Schedule.from_string("rrwwrwrw")
        traces = {}
        for backend in ("reference", "vectorized", "protocol"):
            trace = TraceInstrumentation()
            run("sw3", schedule, MODEL, backend=backend,
                instrumentation=trace)
            traces[backend] = trace.records
        assert traces["reference"] == traces["vectorized"] == traces["protocol"]
        assert [index for index, _kind, _cost in traces["reference"]] == list(
            range(len(schedule))
        )

    def test_dispatch_reason_reported(self):
        counters = CounterInstrumentation()
        run("sw9", Schedule.from_string("rw"), MODEL, instrumentation=counters)
        _name, backend, reason = counters.dispatch_log[0]
        assert backend == "vectorized"
        assert "sw9" in reason


class TestTotalFromCounts:
    def test_matches_manual_sum(self):
        result = run("sw9", Schedule.from_string("rwrwwwrr" * 5), MODEL)
        assert total_from_counts(result.event_counts, MODEL) == result.total_cost

    def test_empty_counts(self):
        assert total_from_counts({}, MODEL) == 0.0


class TestVersioning:
    def test_single_source_of_values(self):
        assert INITIAL_VALUE == "v0"
        assert INITIAL_VERSION == 0
        assert value_for_write(17) == "v17"

    def test_protocol_runner_uses_versioning(self):
        result = run("st2", Schedule.from_string("wr"), MODEL,
                     backend="protocol")
        observations = result.raw.read_observations
        assert observations == ((1, value_for_write(0), 1),)


class TestEngineResult:
    def test_result_shape(self):
        result = run("sw9", Schedule.from_string("rwr"), MODEL)
        assert isinstance(result, EngineResult)
        assert result.algorithm_name == "sw9"
        assert result.requests == 3
        assert result.elapsed_seconds >= 0.0
        assert result.dispatch_reason
        assert AUTO == "auto"

    def test_empty_schedule(self):
        for backend in ("reference", "vectorized", "protocol"):
            result = run("sw9", Schedule.from_string(""), MODEL,
                         backend=backend)
            assert result.total_cost == 0.0
            assert result.event_counts == {}
            assert result.mean_cost == 0.0
