"""Fault containment in the engine dispatcher.

A backend that raises mid-run must never take the caller down with it:
the dispatcher captures the failure as a structured
:class:`BackendDiagnostic`, notifies instrumentation, and transparently
re-executes the run on the always-correct reference backend.  The
second half covers the ``faults=`` dispatch rules: fault injection is
a wire-level concern, so it pins the run to the protocol backend and
refuses contradictory forcing.
"""

from __future__ import annotations

import pytest

from repro.engine import (
    BackendDiagnostic,
    CounterInstrumentation,
    get_backend,
    run,
)
from repro.exceptions import InvalidParameterError
from repro.sim.faults import FaultConfig
from repro.costmodels import ConnectionCostModel
from repro.types import Schedule

MODEL = ConnectionCostModel()
SCHEDULE = Schedule.from_string("rrwrwwrr")


@pytest.fixture
def broken_vectorized(monkeypatch):
    """Make the vectorized backend explode mid-run."""
    backend = get_backend("vectorized")

    def explode(self, spec, instrumentation):
        raise ZeroDivisionError("synthetic mid-run kernel failure")

    monkeypatch.setattr(type(backend), "execute", explode)
    return backend


class TestReferenceFallback:
    def test_run_survives_backend_crash(self, broken_vectorized):
        result = run("sw9", SCHEDULE, MODEL, backend="vectorized")
        # The answer still arrives, computed by the reference replay.
        assert result.backend_name == "reference"
        assert result.total_cost == run("sw9", SCHEDULE, MODEL,
                                        backend="reference").total_cost

    def test_diagnostic_is_structured(self, broken_vectorized):
        result = run("sw9", SCHEDULE, MODEL, backend="vectorized")
        diagnostic = result.diagnostic
        assert isinstance(diagnostic, BackendDiagnostic)
        assert diagnostic.backend_name == "vectorized"
        assert diagnostic.algorithm_name == "sw9"
        assert diagnostic.error_type == "ZeroDivisionError"
        assert "synthetic mid-run kernel failure" in diagnostic.error_message
        assert diagnostic.fallback_backend == "reference"
        assert "vectorized" in str(diagnostic)

    def test_dispatch_reason_explains_the_detour(self, broken_vectorized):
        result = run("sw9", SCHEDULE, MODEL, backend="vectorized")
        assert "fallback" in result.dispatch_reason
        assert "ZeroDivisionError" in result.dispatch_reason

    def test_instrumentation_sees_the_fallback(self, broken_vectorized):
        counters = CounterInstrumentation()
        run("sw9", SCHEDULE, MODEL, backend="vectorized",
            instrumentation=counters)
        assert len(counters.fallbacks) == 1
        assert counters.fallbacks[0].backend_name == "vectorized"
        assert counters.summary()["fallbacks"] == [str(counters.fallbacks[0])]
        # The run is counted once, under the backend that delivered it.
        assert counters.backend_runs.get("reference") == 1

    def test_fallback_false_propagates(self, broken_vectorized):
        with pytest.raises(ZeroDivisionError):
            run("sw9", SCHEDULE, MODEL, backend="vectorized",
                fallback=False)

    def test_reference_crash_is_never_swallowed(self, monkeypatch):
        backend = get_backend("reference")

        def explode(self, spec, instrumentation):
            raise RuntimeError("reference is the floor; nothing below")

        monkeypatch.setattr(type(backend), "execute", explode)
        with pytest.raises(RuntimeError, match="floor"):
            run("sw9", SCHEDULE, MODEL, backend="reference")

    def test_clean_run_has_no_diagnostic(self):
        result = run("sw9", SCHEDULE, MODEL)
        assert result.diagnostic is None


class TestFaultDispatch:
    def test_faults_pin_protocol_backend(self):
        result = run("sw9", SCHEDULE, MODEL, faults=FaultConfig(seed=1))
        assert result.backend_name == "protocol"
        assert "fault injection" in result.dispatch_reason

    def test_faults_reject_forced_other_backend(self):
        with pytest.raises(InvalidParameterError, match="wire simulation"):
            run("sw9", SCHEDULE, MODEL, backend="vectorized",
                faults=FaultConfig(seed=1))

    def test_faults_reject_continued_runs(self):
        with pytest.raises(InvalidParameterError, match="fresh"):
            run("sw9", SCHEDULE, MODEL, fresh=False,
                faults=FaultConfig(seed=1))

    def test_engine_chaos_total_matches_fault_free(self):
        faults = FaultConfig(drop=0.2, duplicate=0.1, reorder=0.2,
                             seed=23, episodes=((0.5, 2.0),))
        chaos = run("t2_3", SCHEDULE, MODEL, faults=faults)
        clean = run("t2_3", SCHEDULE, MODEL, backend="protocol")
        assert chaos.total_cost == clean.total_cost
        assert chaos.event_counts == clean.event_counts
        assert chaos.raw.overhead.physical_frames > 0
