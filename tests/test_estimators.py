"""Unit tests for the estimator-based allocators."""

from __future__ import annotations

import pytest

from repro.core import EwmaAllocator, HysteresisSlidingWindow, SlidingWindow, replay
from repro.core.registry import make_algorithm
from repro.costmodels import ConnectionCostModel, CostEventKind
from repro.exceptions import InvalidParameterError
from repro.types import READ, WRITE, AllocationScheme, Schedule


class TestEwmaAllocator:
    def test_starts_one_copy_by_default(self):
        assert EwmaAllocator(0.2).scheme is AllocationScheme.ONE_COPY

    def test_estimate_decays_on_reads(self):
        allocator = EwmaAllocator(0.5)
        allocator.process(READ)
        assert allocator.estimate == pytest.approx(0.5)
        allocator.process(READ)
        assert allocator.estimate == pytest.approx(0.25)

    def test_allocates_when_estimate_crosses_half(self):
        allocator = EwmaAllocator(0.5)
        assert allocator.process(READ) is CostEventKind.REMOTE_READ
        assert not allocator.mobile_has_copy  # estimate exactly 0.5
        assert allocator.process(READ) is CostEventKind.REMOTE_READ
        assert allocator.mobile_has_copy  # 0.25 < 0.5

    def test_deallocates_when_writes_push_estimate_up(self):
        allocator = EwmaAllocator(0.5)
        allocator.process(READ)
        allocator.process(READ)  # copy allocated, estimate 0.25
        kind = allocator.process(WRITE)  # estimate 0.625 >= 0.5
        assert kind is CostEventKind.WRITE_PROPAGATED_DEALLOCATE
        assert not allocator.mobile_has_copy

    def test_alpha_one_tracks_last_request(self):
        """alpha = 1 reproduces SW1's allocation trajectory."""
        allocator = EwmaAllocator(1.0)
        schedule = Schedule.from_string("rwrrwwr")
        expected = [True, False, True, True, False, False, True]
        for request, has_copy in zip(schedule, expected):
            allocator.process(request.operation)
            assert allocator.mobile_has_copy == has_copy

    def test_initial_estimate_below_half_starts_with_copy(self):
        allocator = EwmaAllocator(0.2, initial_estimate=0.1)
        assert allocator.scheme is AllocationScheme.TWO_COPIES

    def test_reset_restores_estimate(self):
        allocator = EwmaAllocator(0.4)
        for _ in range(5):
            allocator.process(READ)
        allocator.reset()
        assert allocator.estimate == 1.0
        assert not allocator.mobile_has_copy

    def test_registry_name(self):
        allocator = make_algorithm("ewma_20")
        assert isinstance(allocator, EwmaAllocator)
        assert allocator.alpha == pytest.approx(0.2)
        assert allocator.name == "ewma_20"

    def test_parameter_validation(self):
        with pytest.raises(InvalidParameterError):
            EwmaAllocator(0.0)
        with pytest.raises(InvalidParameterError):
            EwmaAllocator(1.5)
        with pytest.raises(InvalidParameterError):
            EwmaAllocator(0.5, initial_estimate=2.0)
        with pytest.raises(InvalidParameterError):
            EwmaAllocator(0.5, quantization=0)

    def test_state_signature_reflects_estimate(self):
        a = EwmaAllocator(0.5)
        b = EwmaAllocator(0.5)
        a.process(READ)
        assert a.state_signature() != b.state_signature()


class TestHysteresisSlidingWindow:
    def test_margin_zero_is_exactly_swk(self):
        schedule = Schedule.from_string("rrrwwrwrwwwrrrrrwwwwwrrrwr")
        model = ConnectionCostModel()
        plain = replay(SlidingWindow(5), schedule, model)
        hysteresis = replay(HysteresisSlidingWindow(5, 0), schedule, model)
        assert plain.schemes == hysteresis.schemes
        assert plain.total_cost == hysteresis.total_cost

    def test_margin_delays_allocation(self):
        # k=5, margin=2: needs imbalance > 2, i.e. at least 4 reads in
        # the window.
        allocator = HysteresisSlidingWindow(5, 2)
        for _ in range(3):
            allocator.process(READ)
        assert not allocator.mobile_has_copy  # imbalance 3-2 = 1 <= 2
        allocator.process(READ)
        assert allocator.mobile_has_copy  # imbalance 4-1 = 3 > 2

    def test_margin_delays_deallocation(self):
        allocator = HysteresisSlidingWindow(5, 2)
        for _ in range(5):
            allocator.process(READ)
        allocator.process(WRITE)
        allocator.process(WRITE)
        # imbalance 3-2 = 1 >= -2: still holding.
        assert allocator.mobile_has_copy
        allocator.process(WRITE)
        allocator.process(WRITE)
        # imbalance 1-4 = -3 < -2: dropped.
        assert not allocator.mobile_has_copy

    def test_deadband_keeps_current_scheme(self):
        """Inside the deadband neither side forces a change."""
        allocator = HysteresisSlidingWindow(3, 1)
        allocator.process(READ)
        allocator.process(READ)
        allocator.process(READ)
        assert allocator.mobile_has_copy  # imbalance 3 > 1
        allocator.process(WRITE)  # imbalance 1, within the deadband
        assert allocator.mobile_has_copy

    def test_registry_name(self):
        allocator = make_algorithm("hsw9_2")
        assert isinstance(allocator, HysteresisSlidingWindow)
        assert allocator.k == 9
        assert allocator.margin == 2

    def test_parameter_validation(self):
        with pytest.raises(InvalidParameterError):
            HysteresisSlidingWindow(4, 0)  # even k
        with pytest.raises(InvalidParameterError):
            HysteresisSlidingWindow(5, 5)  # margin >= k
        with pytest.raises(InvalidParameterError):
            HysteresisSlidingWindow(5, -1)

    def test_fewer_scheme_changes_than_plain_window(self):
        import numpy as np

        from repro.workload import bernoulli_schedule

        schedule = bernoulli_schedule(0.5, 10_000, rng=np.random.default_rng(4))
        model = ConnectionCostModel()
        plain = replay(SlidingWindow(9), schedule, model).allocation_changes()
        damped = replay(
            HysteresisSlidingWindow(9, 2), schedule, model
        ).allocation_changes()
        assert damped < plain
