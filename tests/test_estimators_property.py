"""Property suite for the online θ estimators (``core/estimators.py``).

Two claims a frequency-estimating allocator stands on, driven by
hypothesis over seeds and rates:

* on a stationary Bernoulli(θ) stream the EWMA write-fraction estimate
  converges into a neighborhood of the true θ whose width is set by the
  smoothing factor (stddev ≈ sqrt(α/(2-α)·θ(1-θ))), and stays there;
* after an abrupt regime switch the estimate tracks the new θ within
  tolerance once the old regime has decayed (a few 1/α time constants).

The windowed estimator feeding the adaptive allocator
(:class:`repro.core.adaptive.OnlineThetaEstimator`) gets the same two
properties with its window playing the role of 1/α.
"""

from __future__ import annotations

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.adaptive import OnlineThetaEstimator
from repro.core.estimators import EwmaAllocator
from repro.types import Operation

seeds = st.integers(min_value=0, max_value=2**32 - 1)
thetas = st.floats(min_value=0.05, max_value=0.95,
                   allow_nan=False, allow_infinity=False)


def _feed(algorithm, writes) -> None:
    for is_write in writes:
        algorithm.process(Operation.WRITE if is_write else Operation.READ)


def _ewma_band(alpha: float, theta: float) -> float:
    """A ~5-sigma stationary band for the EWMA around θ."""
    stddev = math.sqrt(alpha / (2.0 - alpha) * theta * (1.0 - theta))
    return 5.0 * stddev + alpha  # + alpha covers the quantized last step


class TestEwmaConvergence:
    @given(seed=seeds, theta=thetas)
    @settings(max_examples=30, deadline=None)
    def test_estimate_converges_on_stationary_stream(self, seed, theta):
        alpha = 0.05
        allocator = EwmaAllocator(alpha)
        rng = np.random.default_rng(seed)
        # Burn-in: ~8 time constants erase the initial estimate.
        _feed(allocator, rng.random(int(8 / alpha)) < theta)
        assert abs(allocator.estimate - theta) <= _ewma_band(alpha, theta)

    @given(seed=seeds, theta=thetas)
    @settings(max_examples=20, deadline=None)
    def test_estimate_stays_in_band_once_converged(self, seed, theta):
        alpha = 0.05
        allocator = EwmaAllocator(alpha)
        rng = np.random.default_rng(seed)
        _feed(allocator, rng.random(int(8 / alpha)) < theta)
        band = _ewma_band(alpha, theta)
        for is_write in rng.random(200) < theta:
            allocator.process(
                Operation.WRITE if is_write else Operation.READ
            )
            assert abs(allocator.estimate - theta) <= band

    @given(
        seed=seeds,
        theta_before=st.floats(min_value=0.05, max_value=0.3),
        theta_after=st.floats(min_value=0.7, max_value=0.95),
    )
    @settings(max_examples=25, deadline=None)
    def test_estimate_tracks_an_injected_regime_switch(
        self, seed, theta_before, theta_after
    ):
        alpha = 0.05
        allocator = EwmaAllocator(alpha)
        rng = np.random.default_rng(seed)
        _feed(allocator, rng.random(int(8 / alpha)) < theta_before)
        assert (abs(allocator.estimate - theta_before)
                <= _ewma_band(alpha, theta_before))
        # The switch: after ~8 more time constants the old regime has
        # decayed by e^-8 and the estimate must sit at the new θ.
        _feed(allocator, rng.random(int(8 / alpha)) < theta_after)
        assert (abs(allocator.estimate - theta_after)
                <= _ewma_band(alpha, theta_after))

    def test_deterministic_saturation(self):
        # The quantized update has a fixed point a few rounding ulps
        # from each rail (0.8·2e-6 rounds back to 2e-6), so saturation
        # means "within quantization of the rail", not exact equality.
        allocator = EwmaAllocator(0.2)
        _feed(allocator, [False] * 200)
        assert allocator.estimate <= 1e-5
        _feed(allocator, [True] * 200)
        assert allocator.estimate >= 1.0 - 1e-5


class TestWindowedEstimator:
    @given(seed=seeds, theta=thetas)
    @settings(max_examples=25, deadline=None)
    def test_window_mean_converges_on_stationary_stream(self, seed, theta):
        window = 64
        estimator = OnlineThetaEstimator(window=window, threshold=0.9)
        rng = np.random.default_rng(seed)
        for is_write in rng.random(4 * window) < theta:
            estimator.observe(bool(is_write))
        # 5-sigma band for a mean of `window` Bernoulli draws.
        band = 5.0 * math.sqrt(theta * (1.0 - theta) / window)
        assert abs(estimator.estimate - theta) <= band

    @given(seed=seeds)
    @settings(max_examples=20, deadline=None)
    def test_estimate_tracks_after_switch(self, seed):
        window = 48
        estimator = OnlineThetaEstimator(window=window, threshold=0.35)
        rng = np.random.default_rng(seed)
        for is_write in rng.random(4 * window) < 0.1:
            estimator.observe(bool(is_write))
        for is_write in rng.random(4 * window) < 0.9:
            estimator.observe(bool(is_write))
        band = 5.0 * math.sqrt(0.9 * 0.1 / window)
        assert abs(estimator.estimate - 0.9) <= band
