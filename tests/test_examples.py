"""Smoke tests: every shipped example must run end to end.

The examples are deliverables; this locks them against API drift.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = [
    "quickstart",
    "stock_ticker",
    "road_traffic",
    "adversarial_audit",
    "multi_object_portfolio",
    "mobile_briefcase",
    "trace_workflow",
]


def _load(name: str):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    module = _load(name)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"example {name} produced no output"


def test_quickstart_reports_costs(capsys):
    _load("quickstart").main()
    out = capsys.readouterr().out
    assert "mean cost" in out
    assert "advisor" in out


def test_adversarial_audit_hits_claims(capsys):
    _load("adversarial_audit").main()
    out = capsys.readouterr().out
    # The tight families land exactly on the claimed factors.
    assert "measured    4.000   claimed 4.000" in out
    assert "not competitive" in out


def test_briefcase_recommends_savings(capsys):
    _load("mobile_briefcase").main()
    out = capsys.readouterr().out
    assert "saves $" in out
