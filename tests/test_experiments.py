"""Tests for the experiment harness and every experiment (quick mode)."""

from __future__ import annotations

import pytest

from repro.exceptions import UnknownExperimentError
from repro.experiments import all_experiment_ids, get_experiment
from repro.experiments.harness import Check, ExperimentResult, approx_check
from repro.experiments.tables import format_region_map, format_staircase, format_table


class TestHarness:
    def test_check_render(self):
        assert Check("x", True, "ok").render() == "  [PASS] x — ok"
        assert "[FAIL]" in Check("x", False).render()

    def test_approx_check_absolute(self):
        assert approx_check("a", 1.005, 1.0, 0.01).passed
        assert not approx_check("a", 1.02, 1.0, 0.01).passed

    def test_approx_check_relative(self):
        assert approx_check("a", 110.0, 100.0, 0.2, relative=True).passed
        assert not approx_check("a", 130.0, 100.0, 0.2, relative=True).passed

    def test_result_passed(self):
        result = ExperimentResult("id", "t", "c")
        result.checks.append(Check("ok", True))
        assert result.passed
        result.checks.append(Check("bad", False))
        assert not result.passed
        assert len(result.failed_checks()) == 1

    def test_result_render_contains_pieces(self):
        result = ExperimentResult("id", "title", "claim")
        result.rows.append({"a": 1, "b": 2.5})
        result.checks.append(Check("c1", True))
        text = result.render()
        assert "title" in text
        assert "claim" in text
        assert "2.5000" in text
        assert "[PASS] c1" in text


class TestTables:
    def test_format_table_alignment(self):
        text = format_table([{"col": 1, "other": "xy"}, {"col": 22}])
        lines = text.splitlines()
        assert lines[0].startswith("col")
        assert len(lines) == 4  # header, separator, 2 rows

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"

    def test_format_table_column_order_first_seen(self):
        text = format_table([{"z": 1}, {"a": 2}])
        header = text.splitlines()[0]
        assert header.index("z") < header.index("a")

    def test_region_map_shape(self):
        text = format_region_map(
            lambda t, w: "x", theta_steps=11, omega_steps=5,
            legend={"x": "test"},
        )
        lines = text.splitlines()
        assert len(lines) == 5 + 3  # omega rows + axis + label + legend
        assert "legend" in lines[-1]

    def test_staircase(self):
        text = format_staircase([(0.5, 3), (0.6, None)])
        assert "0.500" in text
        assert "###" in text
        assert "-" in text


class TestRegistry:
    def test_all_ids_unique(self):
        ids = all_experiment_ids()
        assert len(ids) == len(set(ids))
        assert "fig1" in ids and "fig2" in ids

    def test_unknown_id_rejected(self):
        with pytest.raises(UnknownExperimentError):
            get_experiment("fig99")

    def test_instances_carry_metadata(self):
        for experiment_id in all_experiment_ids():
            experiment = get_experiment(experiment_id)
            assert experiment.experiment_id == experiment_id
            assert experiment.title
            assert experiment.paper_claim


@pytest.mark.parametrize("experiment_id", [
    "fig1",
    "fig2",
    "t-conn-exp",
    "t-conn-avg",
    "t-conn-comp",
    "t-msg-exp",
    "t-msg-avg",
    "t-msg-comp",
    "t-threshold",
    "t-multi",
    "t-conclusion",
    "t-ablations",
    "t-exact",
    "t-estimators",
    "t-bursty",
])
def test_experiment_passes_in_quick_mode(experiment_id):
    """Every reproduction experiment must pass all its checks."""
    result = get_experiment(experiment_id).run(quick=True)
    failed = result.failed_checks()
    assert not failed, "\n".join(check.render() for check in failed)
    assert result.elapsed_seconds >= 0


def test_experiments_are_deterministic():
    """Same seeds, same results: two runs serialize identically
    (modulo wall-clock timing)."""
    first = get_experiment("t-conclusion").run(quick=True).to_dict()
    second = get_experiment("t-conclusion").run(quick=True).to_dict()
    first.pop("elapsed_seconds")
    second.pop("elapsed_seconds")
    assert first == second
