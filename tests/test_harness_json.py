"""Tests for JSON reporting of experiment results and the CLI flag."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.experiments import get_experiment
from repro.experiments.harness import Check, ExperimentResult


class TestToDict:
    def test_round_trips_through_json(self):
        result = ExperimentResult("id", "title", "claim")
        result.rows.append({"theta": 0.5, "cost": 0.25, "winner": "sw1"})
        result.checks.append(Check("c", True, "d"))
        result.figures.append("ascii art")
        payload = json.loads(result.to_json())
        assert payload["experiment_id"] == "id"
        assert payload["passed"] is True
        assert payload["rows"][0]["cost"] == 0.25
        assert payload["checks"][0] == {"name": "c", "passed": True, "detail": "d"}
        assert payload["figures"] == ["ascii art"]

    def test_handles_infinity_and_objects(self):
        result = ExperimentResult("id", "t", "c")
        result.rows.append({"ratio": float("inf"), "obj": object()})
        payload = json.loads(result.to_json())
        assert payload["rows"][0]["ratio"] == "inf"
        assert isinstance(payload["rows"][0]["obj"], str)

    def test_real_experiment_serializes(self):
        result = get_experiment("t-conclusion").run(quick=True)
        payload = json.loads(result.to_json())
        assert payload["passed"]
        assert payload["rows"]


class TestCliJson:
    def test_run_writes_json(self, tmp_path, capsys):
        target = tmp_path / "out.json"
        code = main(["run", "t-conclusion", "--quick", "--json", str(target)])
        assert code == 0
        payload = json.loads(target.read_text())
        assert payload["experiment_id"] == "t-conclusion"
        assert f"wrote {target}" in capsys.readouterr().out
