"""Unit tests for the multi-object extension (section 7.2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.multi_object import (
    ExhaustiveStaticOptimizer,
    MinCutStaticOptimizer,
    MultiObjectWorkloadSpec,
    OperationClass,
    WindowedMultiObjectAllocator,
    expected_cost,
)
from repro.costmodels import ConnectionCostModel, MessageCostModel
from repro.exceptions import InvalidParameterError
from repro.types import AllocationScheme, Operation, Request
from repro.workload.multi_object import MultiObjectWorkload

_ONE = AllocationScheme.ONE_COPY
_TWO = AllocationScheme.TWO_COPIES


def two_object_spec():
    return MultiObjectWorkloadSpec(
        {
            OperationClass.read("x"): 30.0,
            OperationClass.read("y"): 4.0,
            OperationClass.read("x", "y"): 3.0,
            OperationClass.write("x"): 5.0,
            OperationClass.write("y"): 25.0,
            OperationClass.write("x", "y"): 3.0,
        }
    )


class TestOperationClass:
    def test_constructors(self):
        read = OperationClass.read("x", "y")
        assert read.operation is Operation.READ
        assert read.objects == frozenset({"x", "y"})

    def test_rejects_empty(self):
        with pytest.raises(InvalidParameterError):
            OperationClass(Operation.READ, frozenset())

    def test_repr_is_stable(self):
        assert repr(OperationClass.write("b", "a")) == "w(a,b)"


class TestWorkloadSpec:
    def test_total_rate_and_objects(self):
        spec = two_object_spec()
        assert spec.total_rate == 70.0
        assert spec.objects == frozenset({"x", "y"})

    def test_probability(self):
        spec = two_object_spec()
        assert spec.probability(OperationClass.read("x")) == pytest.approx(30 / 70)
        assert spec.probability(OperationClass.read("z")) == 0.0

    def test_merges_duplicates(self):
        spec = MultiObjectWorkloadSpec(
            {OperationClass.read("x"): 1.0, OperationClass.write("x"): 2.0}
        )
        assert len(spec) == 2

    def test_rejects_negative_frequency(self):
        with pytest.raises(InvalidParameterError):
            MultiObjectWorkloadSpec({OperationClass.read("x"): -1.0})

    def test_rejects_empty(self):
        with pytest.raises(InvalidParameterError):
            MultiObjectWorkloadSpec({})


class TestExpectedCost:
    def test_paper_formula_st1(self):
        # EXP_ST1 = (l_rx + l_ry + l_rxy)/l.
        spec = two_object_spec()
        allocation = {"x": _ONE, "y": _ONE}
        assert expected_cost(spec, allocation) == pytest.approx(37 / 70)

    def test_paper_formula_st12(self):
        # EXP_ST1,2 = (l_rx + l_wy + l_rxy + l_wxy)/l.
        spec = two_object_spec()
        allocation = {"x": _ONE, "y": _TWO}
        assert expected_cost(spec, allocation) == pytest.approx(61 / 70)

    def test_message_model_scales_reads(self):
        spec = two_object_spec()
        allocation = {"x": _ONE, "y": _ONE}
        cost = expected_cost(spec, allocation, MessageCostModel(0.5))
        assert cost == pytest.approx(1.5 * 37 / 70)

    def test_rejects_incomplete_allocation(self):
        with pytest.raises(InvalidParameterError):
            expected_cost(two_object_spec(), {"x": _ONE})


class TestOptimizers:
    def test_exhaustive_finds_mixed_optimum(self):
        allocation, cost = ExhaustiveStaticOptimizer().optimize(two_object_spec())
        assert allocation == {"x": _TWO, "y": _ONE}
        assert cost == pytest.approx(15 / 70)

    def test_mincut_matches_exhaustive_on_example(self):
        allocation, cost = MinCutStaticOptimizer().optimize(two_object_spec())
        assert allocation == {"x": _TWO, "y": _ONE}
        assert cost == pytest.approx(15 / 70)

    def test_single_object_read_heavy(self):
        spec = MultiObjectWorkloadSpec(
            {OperationClass.read("x"): 9.0, OperationClass.write("x"): 1.0}
        )
        allocation, cost = MinCutStaticOptimizer().optimize(spec)
        assert allocation["x"] is _TWO
        assert cost == pytest.approx(0.1)

    def test_exhaustive_guard(self):
        frequencies = {
            OperationClass.read(f"o{i}"): 1.0 for i in range(25)
        }
        with pytest.raises(InvalidParameterError):
            ExhaustiveStaticOptimizer().optimize(MultiObjectWorkloadSpec(frequencies))

    @pytest.mark.parametrize("model", [ConnectionCostModel(), MessageCostModel(0.6)])
    def test_mincut_equals_exhaustive_randomized(self, model):
        rng = np.random.default_rng(99)
        for _ in range(40):
            num_objects = int(rng.integers(2, 7))
            names = [f"o{i}" for i in range(num_objects)]
            frequencies = {}
            for _ in range(int(rng.integers(2, 9))):
                size = int(rng.integers(1, min(4, num_objects) + 1))
                subset = rng.choice(names, size=size, replace=False)
                cls = (
                    OperationClass.read(*subset)
                    if rng.random() < 0.5
                    else OperationClass.write(*subset)
                )
                frequencies[cls] = frequencies.get(cls, 0.0) + float(
                    rng.uniform(0.5, 5.0)
                )
            spec = MultiObjectWorkloadSpec(frequencies)
            _, exhaustive = ExhaustiveStaticOptimizer(model).optimize(spec)
            mincut_allocation, mincut = MinCutStaticOptimizer(model).optimize(spec)
            assert mincut == pytest.approx(exhaustive, abs=1e-9)
            # The min-cut allocation itself achieves its reported cost.
            assert expected_cost(spec, mincut_allocation, model) == pytest.approx(
                mincut, abs=1e-9
            )

    def test_mincut_handles_many_objects(self):
        """Beyond exhaustive's reach: 40 objects, pairwise joints."""
        rng = np.random.default_rng(7)
        frequencies = {}
        for i in range(40):
            frequencies[OperationClass.read(f"o{i}")] = float(rng.uniform(0, 5))
            frequencies[OperationClass.write(f"o{i}")] = float(rng.uniform(0, 5))
            if i:
                frequencies[OperationClass.read(f"o{i - 1}", f"o{i}")] = float(
                    rng.uniform(0, 2)
                )
        spec = MultiObjectWorkloadSpec(frequencies)
        allocation, cost = MinCutStaticOptimizer().optimize(spec)
        assert len(allocation) == 40
        assert 0.0 <= cost <= 1.0


class TestWindowedAllocator:
    def test_converges_to_static_optimum(self):
        spec = two_object_spec()
        workload = MultiObjectWorkload(spec, seed=42)
        allocator = WindowedMultiObjectAllocator(
            spec.objects, window_size=200, reallocation_period=40
        )
        allocator.run(workload.generate(4_000))
        _, optimum = ExhaustiveStaticOptimizer().optimize(spec)
        assert allocator.allocation == {"x": _TWO, "y": _ONE}

    def test_cost_rate_near_optimum(self):
        spec = two_object_spec()
        workload = MultiObjectWorkload(spec, seed=43)
        allocator = WindowedMultiObjectAllocator(
            spec.objects, window_size=200, reallocation_period=40
        )
        length = 6_000
        rate = allocator.run(workload.generate(length)) / length
        _, optimum = ExhaustiveStaticOptimizer().optimize(spec)
        assert rate <= optimum * 1.2

    def test_adapts_to_regime_change(self):
        """Flip the workload mid-run; the allocation must follow."""
        hot_reads = MultiObjectWorkloadSpec(
            {OperationClass.read("x"): 9.0, OperationClass.write("x"): 1.0}
        )
        hot_writes = MultiObjectWorkloadSpec(
            {OperationClass.read("x"): 1.0, OperationClass.write("x"): 9.0}
        )
        allocator = WindowedMultiObjectAllocator(
            ["x"], window_size=50, reallocation_period=10
        )
        allocator.run(MultiObjectWorkload(hot_reads, seed=1).generate(500))
        assert allocator.allocation["x"] is _TWO
        allocator.run(MultiObjectWorkload(hot_writes, seed=2).generate(500))
        assert allocator.allocation["x"] is _ONE

    def test_rejects_requests_without_objects(self):
        allocator = WindowedMultiObjectAllocator(["x"])
        with pytest.raises(InvalidParameterError):
            allocator.process(Request(Operation.READ))

    def test_rejects_unknown_objects(self):
        allocator = WindowedMultiObjectAllocator(["x"])
        with pytest.raises(InvalidParameterError):
            allocator.process(Request(Operation.READ, objects=("z",)))

    def test_parameter_validation(self):
        with pytest.raises(InvalidParameterError):
            WindowedMultiObjectAllocator([])
        with pytest.raises(InvalidParameterError):
            WindowedMultiObjectAllocator(["x"], window_size=0)
        with pytest.raises(InvalidParameterError):
            WindowedMultiObjectAllocator(["x"], optimizer="quantum")


class TestMultiObjectWorkload:
    def test_lengths_and_objects(self):
        workload = MultiObjectWorkload(two_object_spec(), seed=3)
        schedule = workload.generate(100)
        assert len(schedule) == 100
        assert all(request.objects for request in schedule)

    def test_class_frequencies_converge(self):
        spec = two_object_spec()
        workload = MultiObjectWorkload(spec, seed=4)
        schedule = workload.generate(50_000)
        joint_reads = sum(
            1
            for request in schedule
            if request.is_read and request.objects == ("x", "y")
        )
        assert joint_reads / len(schedule) == pytest.approx(3 / 70, abs=0.005)

    def test_rejects_negative_length(self):
        with pytest.raises(InvalidParameterError):
            MultiObjectWorkload(two_object_spec(), seed=5).generate(-1)
