"""Tests for the multi-object offline optimum (section 7.2 extension)."""

from __future__ import annotations

import functools
import itertools

import numpy as np
import pytest

from repro.core.multi_object import (
    ExhaustiveStaticOptimizer,
    MultiObjectOfflineOptimal,
    MultiObjectWorkloadSpec,
    OperationClass,
    WindowedMultiObjectAllocator,
)
from repro.costmodels import ConnectionCostModel, MessageCostModel
from repro.exceptions import InvalidParameterError
from repro.types import Operation, Request, Schedule
from repro.workload.multi_object import MultiObjectWorkload

MODEL = ConnectionCostModel()


def brute_force(schedule: Schedule, names, model) -> float:
    """Independent oracle: memoized recursion over replica sets."""
    names = sorted(names)
    index_of = {name: i for i, name in enumerate(names)}
    read_price = model.remote_read_cost
    write_price = model.write_propagate_cost

    requests = tuple(
        (
            request.operation,
            functools.reduce(
                lambda mask, name: mask | (1 << index_of[name]),
                request.objects,
                0,
            ),
        )
        for request in schedule
    )
    full = (1 << len(names)) - 1

    @functools.lru_cache(maxsize=None)
    def go(step: int, state: int) -> float:
        if step == len(requests):
            return 0.0
        operation, mask = requests[step]
        if operation is Operation.READ:
            served = read_price if (mask & ~state) else 0.0
            free_mask = mask if (mask & ~state) else 0
        else:
            served = write_price if (mask & state) else 0.0
            free_mask = 0
        best = float("inf")
        for target in range(full + 1):
            gained = target & ~state
            paid = bin(gained & ~free_mask).count("1") * model.acquire_cost
            lost = state & ~target
            paid += bin(lost).count("1") * model.release_cost
            best = min(best, served + paid + go(step + 1, target))
        return best

    return go(0, 0)


def random_schedule(rng, names, length) -> Schedule:
    requests = []
    for _ in range(length):
        size = int(rng.integers(1, min(3, len(names)) + 1))
        subset = tuple(sorted(rng.choice(names, size=size, replace=False)))
        operation = Operation.WRITE if rng.random() < 0.5 else Operation.READ
        requests.append(Request(operation, objects=subset))
    return Schedule(requests)


class TestAgainstBruteForce:
    @pytest.mark.parametrize(
        "model", [ConnectionCostModel(), MessageCostModel(0.4)]
    )
    def test_random_small_instances(self, model):
        rng = np.random.default_rng(77)
        names = ["a", "b", "c"]
        offline = MultiObjectOfflineOptimal(model)
        for _ in range(25):
            schedule = random_schedule(rng, names, length=7)
            assert offline.optimal_cost(schedule, names) == pytest.approx(
                brute_force(schedule, names, model)
            )

    def test_hand_computed(self):
        schedule = Schedule(
            [
                Request(Operation.READ, objects=("x",)),
                Request(Operation.READ, objects=("x",)),
                Request(Operation.WRITE, objects=("x", "y")),
                Request(Operation.READ, objects=("y",)),
            ]
        )
        # First x-read remote (1) + piggyback acquire; release x before
        # the joint write (free); y-read remote (1).
        offline = MultiObjectOfflineOptimal(MODEL)
        assert offline.optimal_cost(schedule, ["x", "y"]) == 2.0

    def test_single_object_matches_scalar_dp(self):
        """On one object the multi-object DP equals OfflineOptimal."""
        from repro.core import OfflineOptimal

        rng = np.random.default_rng(5)
        scalar = OfflineOptimal(MODEL)
        multi = MultiObjectOfflineOptimal(MODEL)
        for _ in range(20):
            bits = "".join(rng.choice(["r", "w"], size=12))
            plain = Schedule.from_string(bits)
            tagged = Schedule(
                Request(request.operation, objects=("x",)) for request in plain
            )
            assert multi.optimal_cost(tagged, ["x"]) == pytest.approx(
                scalar.optimal_cost(plain)
            )


class TestBounds:
    def test_offline_lower_bounds_windowed_allocator(self):
        spec = MultiObjectWorkloadSpec(
            {
                OperationClass.read("x"): 5.0,
                OperationClass.write("y"): 5.0,
                OperationClass.read("x", "y"): 2.0,
                OperationClass.write("x", "y"): 2.0,
            }
        )
        schedule = MultiObjectWorkload(spec, seed=9).generate(400)
        offline = MultiObjectOfflineOptimal(MODEL)
        optimal = offline.optimal_cost(schedule, spec.objects)
        allocator = WindowedMultiObjectAllocator(
            spec.objects, window_size=60, reallocation_period=20
        )
        online = allocator.run(schedule)
        assert optimal <= online + 1e-9

    def test_windowed_ratio_stays_moderate(self):
        """Empirical competitiveness of the windowed method on its
        natural workload: well bounded (no theory claimed)."""
        spec = MultiObjectWorkloadSpec(
            {
                OperationClass.read("x"): 6.0,
                OperationClass.write("x"): 4.0,
                OperationClass.read("y"): 4.0,
                OperationClass.write("y"): 6.0,
            }
        )
        schedule = MultiObjectWorkload(spec, seed=10).generate(600)
        optimal = MultiObjectOfflineOptimal(MODEL).optimal_cost(
            schedule, spec.objects
        )
        allocator = WindowedMultiObjectAllocator(
            spec.objects, window_size=60, reallocation_period=20
        )
        online = allocator.run(schedule)
        assert online <= 5.0 * optimal + 10.0

    def test_offline_at_most_best_static(self):
        spec = MultiObjectWorkloadSpec(
            {
                OperationClass.read("x"): 8.0,
                OperationClass.write("y"): 8.0,
                OperationClass.read("x", "y"): 1.0,
            }
        )
        schedule = MultiObjectWorkload(spec, seed=11).generate(500)
        _, static_rate = ExhaustiveStaticOptimizer(MODEL).optimize(spec)
        offline = MultiObjectOfflineOptimal(MODEL)
        optimal = offline.optimal_cost(schedule, spec.objects)
        # The best static allocation run over this schedule costs about
        # rate * len; offline can only be better (it may also need one
        # acquisition to reach that allocation).
        assert optimal <= static_rate * len(schedule) + 2.0 + 1e-9


class TestValidation:
    def test_rejects_unknown_objects(self):
        schedule = Schedule([Request(Operation.READ, objects=("z",))])
        with pytest.raises(InvalidParameterError):
            MultiObjectOfflineOptimal(MODEL).optimal_cost(schedule, ["x"])

    def test_rejects_object_less_requests(self):
        schedule = Schedule([Request(Operation.READ)])
        with pytest.raises(InvalidParameterError):
            MultiObjectOfflineOptimal(MODEL).optimal_cost(schedule, ["x"])

    def test_rejects_too_many_objects(self):
        with pytest.raises(InvalidParameterError):
            MultiObjectOfflineOptimal(MODEL).optimal_cost(
                Schedule(), [f"o{i}" for i in range(9)]
            )

    def test_empty_schedule_is_free(self):
        assert MultiObjectOfflineOptimal(MODEL).optimal_cost(Schedule(), ["x"]) == 0.0
