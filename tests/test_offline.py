"""Unit tests for the offline optimal dynamic program (section 3's M)."""

from __future__ import annotations

import itertools

import pytest

from repro.core import OfflineOptimal, make_algorithm, replay
from repro.costmodels import ConnectionCostModel, MessageCostModel
from repro.types import AllocationScheme, Operation, Schedule

_ONE = AllocationScheme.ONE_COPY
_TWO = AllocationScheme.TWO_COPIES


def brute_force_optimal(schedule: Schedule, cost_model, initial=_ONE) -> float:
    """Memoized-recursion oracle, written independently of the DP.

    The state is the scheme in effect when serving the next request;
    transitions happen after each request (acquisition is free exactly
    when it piggybacks on a remote read just served, releases cost the
    model's ``release_cost``), plus an optional paid switch before the
    whole schedule.
    """
    import functools

    @functools.lru_cache(maxsize=None)
    def go(index: int, state: AllocationScheme) -> float:
        if index == len(schedule):
            return 0.0
        request = schedule[index]
        options = []
        if request.operation is Operation.READ:
            if state is _TWO:
                options.append(go(index + 1, _TWO))
                options.append(cost_model.release_cost + go(index + 1, _ONE))
            else:
                served = cost_model.remote_read_cost
                # Stay one-copy, or piggyback the copy for free.
                options.append(served + go(index + 1, _ONE))
                options.append(served + go(index + 1, _TWO))
        else:
            if state is _TWO:
                served = cost_model.write_propagate_cost
                options.append(served + go(index + 1, _TWO))
                options.append(
                    served + cost_model.release_cost + go(index + 1, _ONE)
                )
            else:
                options.append(go(index + 1, _ONE))
                options.append(cost_model.acquire_cost + go(index + 1, _TWO))
        return min(options)

    other = _TWO if initial is _ONE else _ONE
    switch_in = (
        cost_model.acquire_cost if other is _TWO else cost_model.release_cost
    )
    return min(go(0, initial), switch_in + go(0, other))


class TestHandComputedOptima:
    def test_all_reads(self):
        # First read goes remote (1 connection) and piggybacks the copy;
        # the rest are local.
        schedule = Schedule.from_string("rrrrr")
        offline = OfflineOptimal(ConnectionCostModel())
        assert offline.optimal_cost(schedule) == 1.0

    def test_all_writes(self):
        # Release the initial... the MC starts without a copy: all free.
        schedule = Schedule.from_string("wwwww")
        offline = OfflineOptimal(ConnectionCostModel())
        assert offline.optimal_cost(schedule) == 0.0

    def test_alternating(self):
        # r w r w: best is to never hold a copy -> pay each read.
        schedule = Schedule.from_string("rwrw")
        offline = OfflineOptimal(ConnectionCostModel())
        assert offline.optimal_cost(schedule) == 2.0

    def test_alternating_message_model_spontaneous_acquire(self):
        # With omega = 1 a remote read costs 2 but a spontaneous data
        # push (acquire) costs only 1 — no read-request needed when the
        # offline algorithm knows the future.  Since releases are free,
        # the optimum pushes a copy before each read and drops it
        # before each write: one data message per read.
        schedule = Schedule.from_string("rwrwrw")
        offline = OfflineOptimal(MessageCostModel(1.0))
        assert offline.optimal_cost(schedule) == 3.0

    def test_alternating_message_model_moderate_omega(self):
        # With omega = 0.2 a remote read (1.2) still beats nothing, but
        # keeping the copy the whole time costs 3 writes = 3.0 after a
        # 1.2 first read; dropping the copy costs 3 reads * 1.2 = 3.6.
        # Best: acquire spontaneously (1.0) before each read is also
        # 3.0... and mixed plans tie at 3.0; dropping-only is 3.6.
        schedule = Schedule.from_string("rwrwrw")
        offline = OfflineOptimal(MessageCostModel(0.2))
        assert offline.optimal_cost(schedule) == 3.0

    def test_empty_schedule(self):
        offline = OfflineOptimal(ConnectionCostModel())
        assert offline.optimal_cost(Schedule()) == 0.0

    def test_free_initial_choice(self):
        schedule = Schedule.from_string("r")
        offline = OfflineOptimal(ConnectionCostModel(), initial_scheme=None)
        # Starting with a copy for free makes the read local.
        assert offline.optimal_cost(schedule) == 0.0

    def test_initial_two_copies(self):
        schedule = Schedule.from_string("w")
        offline = OfflineOptimal(
            ConnectionCostModel(), initial_scheme=AllocationScheme.TWO_COPIES
        )
        # Release before the write is free.
        assert offline.optimal_cost(schedule) == 0.0


class TestDpAgainstBruteForce:
    @pytest.mark.parametrize("model", [ConnectionCostModel(), MessageCostModel(0.3),
                                       MessageCostModel(1.0)])
    def test_exhaustive_small_schedules(self, model):
        offline = OfflineOptimal(model)
        for length in range(1, 9):
            for bits in itertools.product("rw", repeat=length):
                schedule = Schedule.from_string("".join(bits))
                expected = brute_force_optimal(schedule, model)
                assert offline.optimal_cost(schedule) == pytest.approx(expected), (
                    f"schedule {schedule.to_string()}"
                )


class TestWitness:
    def test_witness_has_one_scheme_per_request(self):
        schedule = Schedule.from_string("rwrrrwww")
        run = OfflineOptimal(ConnectionCostModel()).solve(schedule)
        assert len(run.schemes) == len(schedule)

    @staticmethod
    def _price_trajectory(schedule, schemes, model, initial=_ONE) -> float:
        """Re-price a scheme trajectory under the DP's charging rules."""
        cost = 0.0
        if schemes and schemes[0] is not initial:
            cost += model.acquire_cost if schemes[0] is _TWO else model.release_cost
        for index, (request, state) in enumerate(zip(schedule, schemes)):
            if request.operation is Operation.READ:
                if state is _ONE:
                    cost += model.remote_read_cost
            else:
                if state is _TWO:
                    cost += model.write_propagate_cost
            if index + 1 < len(schemes) and schemes[index + 1] is not state:
                if schemes[index + 1] is _TWO:
                    piggyback = (
                        request.operation is Operation.READ and state is _ONE
                    )
                    if not piggyback:
                        cost += model.acquire_cost
                else:
                    cost += model.release_cost
        return cost

    @pytest.mark.parametrize(
        "model", [ConnectionCostModel(), MessageCostModel(0.5)]
    )
    def test_witness_cost_matches_total(self, model):
        """Re-pricing the witness trajectory reproduces the DP value."""
        offline = OfflineOptimal(model)
        schedule = Schedule.from_string("rrwwrwrrrwwrrwwwrrrw")
        run = offline.solve(schedule)
        repriced = self._price_trajectory(schedule, run.schemes, model)
        assert repriced == pytest.approx(run.total_cost)

    def test_witness_no_worse_than_any_trajectory(self):
        """The witness beats every explicitly enumerated trajectory."""
        model = MessageCostModel(0.3)
        offline = OfflineOptimal(model)
        schedule = Schedule.from_string("rwwrrwr")
        run = offline.solve(schedule)
        for states in itertools.product((_ONE, _TWO), repeat=len(schedule)):
            alternative = self._price_trajectory(schedule, list(states), model)
            assert run.total_cost <= alternative + 1e-9


class TestOfflineNeverExceedsOnline:
    def test_offline_lower_bounds_every_algorithm(self, algorithm_name):
        # Free initial choice: ST2 and T2m start with a replica.
        model = ConnectionCostModel()
        offline = OfflineOptimal(model, initial_scheme=None)
        schedule = Schedule.from_string("rwrrwwrrrwwwrrrrwwww" * 3)
        online = replay(make_algorithm(algorithm_name), schedule, model)
        assert offline.optimal_cost(schedule) <= online.total_cost + 1e-9
