"""Byte-identity suite for the packed masks and the tile scheduler.

The contract, hypothesis-swept: a :class:`~repro.core.packed.PackedMasks`
input fed through any thread count and any tile size produces the same
bytes — counts, totals, flips, materialized events — as the unpacked
bool matrix on one thread, for every algorithm family the batched
kernels cover and for all three parameter scans.  Plus unit coverage of
the packbits layout (roundtrip, footprint, validators), the int32→int64
accumulator promotion guard, the ``REPRO_KERNEL_THREADS`` resolution
ladder, and the numba backend's registration-with-fallback.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.core.packed as packed_module
from repro.core.batched import (
    batched_counts,
    batched_run_arrays,
    scan_threshold_counts,
    scan_window_counts,
    stack_write_masks,
)
from repro.core.numba_kernels import numba_available
from repro.core.packed import (
    PackedMasks,
    accumulator_dtype,
    pack_write_masks,
    packed_cumulative,
    packed_run_counts,
)
from repro.costmodels import ConnectionCostModel, MessageCostModel
from repro.engine import kernel_threads, run, run_batched_masks
from repro.engine.batched import _row_tiles
from repro.exceptions import InvalidParameterError, UnknownAlgorithmError
from repro.types import Schedule

MODEL = ConnectionCostModel()

#: One representative per family: ST1, ST2, SW1, SWk, T1m, T2m.
FAMILY_NAMES = ("st1", "st2", "sw1", "sw5", "t1_3", "t2_3")

THREAD_COUNTS = (1, 2, 4)


@st.composite
def schedule_batches(draw, max_rows=5, max_length=60):
    """A non-ragged batch: B schedule strings of one shared length."""
    length = draw(st.integers(min_value=0, max_value=max_length))
    rows = draw(st.integers(min_value=1, max_value=max_rows))
    return [
        draw(st.text(alphabet="rw", min_size=length, max_size=length))
        for _ in range(rows)
    ]


def _writes_from(texts):
    return stack_write_masks([Schedule.from_string(text) for text in texts])


class TestPackedLayout:
    @given(texts=schedule_batches(max_rows=4, max_length=40))
    @settings(max_examples=25, deadline=None)
    def test_pack_unpack_roundtrip(self, texts):
        writes = _writes_from(texts)
        packed = pack_write_masks(writes)
        assert packed.shape == writes.shape
        np.testing.assert_array_equal(packed.to_bool(), writes)
        # Pad bits past ``length`` are zero — the popcount contract.
        if writes.shape[1] % 8 and writes.shape[0]:
            tail = int(packed.bits[:, -1].max())
            spare = 8 - writes.shape[1] % 8
            assert tail & ((1 << spare) - 1) == 0

    def test_footprint_is_an_eighth(self):
        writes = np.ones((8, 4096), dtype=bool)
        packed = pack_write_masks(writes)
        assert packed.nbytes * 8 == writes.nbytes
        assert packed.nbytes <= writes.nbytes / 6

    def test_pack_from_schedules_matches_stack(self):
        schedules = [Schedule.from_string("rwrw"), Schedule.from_string("wwrr")]
        packed = pack_write_masks(schedules)
        np.testing.assert_array_equal(
            packed.to_bool(), stack_write_masks(schedules)
        )

    def test_ragged_schedules_raise(self):
        schedules = [Schedule.from_string("rw"), Schedule.from_string("rwr")]
        with pytest.raises(InvalidParameterError, match="ragged"):
            pack_write_masks(schedules)

    def test_empty_inputs(self):
        assert pack_write_masks([]).shape == (0, 0)
        empty = pack_write_masks(np.empty((3, 0), dtype=bool))
        assert empty.shape == (3, 0)
        assert empty.to_bool().shape == (3, 0)
        counts, flips = packed_run_counts("sw3", empty)
        assert counts.shape == (3, 6) and not counts.any()
        assert not flips.any()

    def test_layout_validators(self):
        with pytest.raises(InvalidParameterError, match="uint8"):
            PackedMasks(np.zeros((2, 3), dtype=np.int64), 24)
        with pytest.raises(InvalidParameterError, match="cannot hold"):
            PackedMasks(np.zeros((2, 3), dtype=np.uint8), 99)
        with pytest.raises(InvalidParameterError, match="bool"):
            PackedMasks.from_bool(np.zeros((2, 3), dtype=np.uint8))

    def test_rows_is_a_view(self):
        packed = pack_write_masks(np.ones((4, 16), dtype=bool))
        tile = packed.rows(1, 3)
        assert tile.batch == 2 and tile.length == 16
        assert tile.bits.base is packed.bits

    def test_unknown_algorithm_raises(self):
        packed = pack_write_masks(np.ones((1, 8), dtype=bool))
        with pytest.raises(UnknownAlgorithmError):
            packed_run_counts("nope", packed)
        with pytest.raises(InvalidParameterError, match="PackedMasks"):
            packed_run_counts("sw3", np.ones((1, 8), dtype=bool))


class TestByteIdentity:
    """{unpacked, packed} x {1, 2, 4 threads} x every family."""

    @pytest.mark.parametrize("algorithm_name", FAMILY_NAMES)
    @given(texts=schedule_batches())
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_packed_threaded_equals_unpacked_serial(
        self, algorithm_name, texts
    ):
        writes = _writes_from(texts)
        models = [MODEL] * writes.shape[0]
        baseline = run_batched_masks(
            algorithm_name, writes, models, threads=1
        )
        packed = pack_write_masks(writes)
        for threads in THREAD_COUNTS:
            for results in (
                run_batched_masks(algorithm_name, writes, models,
                                  threads=threads),
                run_batched_masks(algorithm_name, packed, models,
                                  threads=threads),
            ):
                for expected, got in zip(baseline, results):
                    assert got.total_cost == expected.total_cost
                    assert got.event_counts == expected.event_counts
                    assert got.scheme_changes == expected.scheme_changes

    @pytest.mark.parametrize("algorithm_name", FAMILY_NAMES)
    @given(texts=schedule_batches(max_rows=3, max_length=40),
           warmup=st.integers(0, 8))
    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_packed_counts_equal_code_counts(
        self, algorithm_name, texts, warmup
    ):
        writes = _writes_from(texts)
        codes, copy_after = batched_run_arrays(algorithm_name, writes)
        counts, flips = packed_run_counts(
            algorithm_name, pack_write_masks(writes), warmup
        )
        np.testing.assert_array_equal(counts, batched_counts(codes, warmup))
        if writes.shape[1]:
            expected_flips = (copy_after[:, 1:] != copy_after[:, :-1]).sum(
                axis=1
            )
            np.testing.assert_array_equal(flips, expected_flips)

    @pytest.mark.parametrize("algorithm_name", FAMILY_NAMES)
    def test_materialized_events_survive_packing(self, algorithm_name):
        schedules = [Schedule.from_string("rwrrwwrwrrrwr")] * 3
        packed = pack_write_masks(schedules)
        results = run_batched_masks(
            algorithm_name, packed, [MODEL] * 3, stream=False, threads=2
        )
        for schedule, got in zip(schedules, results):
            reference = run(algorithm_name, schedule, MODEL,
                            backend="reference")
            assert got.total_cost == reference.total_cost
            assert got.events == reference.events
            assert got.event_kinds == reference.event_kinds
            assert got.schemes == reference.schemes


class TestPackedScans:
    @given(texts=schedule_batches(max_rows=4, max_length=50),
           warmup=st.integers(0, 6))
    @settings(max_examples=15, deadline=None)
    def test_window_scan_matches_unpacked(self, texts, warmup):
        writes = _writes_from(texts)
        ks = [1, 3, 5, 9]
        np.testing.assert_array_equal(
            scan_window_counts(pack_write_masks(writes), ks, warmup),
            scan_window_counts(writes, ks, warmup),
        )

    @given(texts=schedule_batches(max_rows=4, max_length=50),
           warmup=st.integers(0, 6))
    @settings(max_examples=15, deadline=None)
    def test_threshold_scans_match_unpacked(self, texts, warmup):
        writes = _writes_from(texts)
        packed = pack_write_masks(writes)
        ms = [1, 2, 4]
        for method in ("t1", "t2"):
            np.testing.assert_array_equal(
                scan_threshold_counts(method, packed, ms, warmup),
                scan_threshold_counts(method, writes, ms, warmup),
            )

    @given(texts=schedule_batches(max_rows=3, max_length=40))
    @settings(max_examples=10, deadline=None)
    def test_packed_cumulative_is_the_cumsum(self, texts):
        writes = _writes_from(texts)
        np.testing.assert_array_equal(
            packed_cumulative(pack_write_masks(writes)),
            np.cumsum(writes, axis=1),
        )


class TestRaggedTiles:
    """B not divisible by the tile size, N not divisible by 8."""

    @pytest.mark.parametrize("algorithm_name", FAMILY_NAMES)
    def test_ragged_tiles_are_invisible(self, algorithm_name):
        rng = np.random.default_rng(17)
        writes = rng.random((5, 13)) < 0.5
        models = [MODEL] * 5
        baseline = run_batched_masks(algorithm_name, writes, models, threads=1)
        packed = pack_write_masks(writes)
        for tile_rows in (1, 2, 3, 7):
            results = run_batched_masks(
                algorithm_name, packed, models, threads=2,
                tile_rows=tile_rows,
            )
            for expected, got in zip(baseline, results):
                assert got.total_cost == expected.total_cost
                assert got.event_counts == expected.event_counts
                assert got.scheme_changes == expected.scheme_changes

    def test_row_tiles_cover_exactly(self):
        tiles = _row_tiles(5, 2, 1)
        assert tiles == [(0, 2), (2, 4), (4, 5)]
        assert _row_tiles(0, 2, 1) == []
        # Default tile size splits evenly across the thread count.
        assert _row_tiles(8, None, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]
        with pytest.raises(InvalidParameterError):
            _row_tiles(5, 0, 1)


class TestAccumulatorGuard:
    def test_dtype_promotes_past_the_safe_length(self):
        assert accumulator_dtype(0) is np.int32
        assert accumulator_dtype(packed_module._INT32_SAFE_LENGTH) is np.int32
        assert (
            accumulator_dtype(packed_module._INT32_SAFE_LENGTH + 1)
            is np.int64
        )
        assert accumulator_dtype(2**31) is np.int64
        with pytest.raises(InvalidParameterError):
            accumulator_dtype(-1)

    def test_promoted_accumulators_keep_byte_identity(self, monkeypatch):
        # Shrink the guard so ordinary schedules take the int64 path;
        # every count must come out identical to the int32 tier.
        rng = np.random.default_rng(23)
        writes = rng.random((4, 37)) < 0.6
        expected_codes, _ = batched_run_arrays("sw5", writes)
        expected_counts, expected_flips = packed_run_counts(
            "sw5", pack_write_masks(writes)
        )
        monkeypatch.setattr(packed_module, "_INT32_SAFE_LENGTH", 4)
        assert accumulator_dtype(37) is np.int64
        codes, _ = batched_run_arrays("sw5", writes)
        np.testing.assert_array_equal(codes, expected_codes)
        counts, flips = packed_run_counts("sw5", pack_write_masks(writes))
        np.testing.assert_array_equal(counts, expected_counts)
        np.testing.assert_array_equal(flips, expected_flips)


class TestKernelThreadResolution:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_THREADS", "7")
        assert kernel_threads(3) == 3

    def test_environment_is_honoured(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_THREADS", "5")
        assert kernel_threads() == 5

    def test_default_is_positive(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL_THREADS", raising=False)
        assert kernel_threads() >= 1

    @pytest.mark.parametrize("junk", ["zero", "1.5", "0", "-2"])
    def test_junk_environment_raises(self, monkeypatch, junk):
        monkeypatch.setenv("REPRO_KERNEL_THREADS", junk)
        with pytest.raises(InvalidParameterError):
            kernel_threads()

    def test_empty_environment_means_unset(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_THREADS", "")
        assert kernel_threads() >= 1

    @pytest.mark.parametrize("bad", [0, -1, 1.5, True])
    def test_bad_explicit_argument_raises(self, bad):
        with pytest.raises(InvalidParameterError):
            kernel_threads(bad)

    def test_environment_steers_the_batched_engine(self, monkeypatch):
        writes = np.tile([True, False, True], (3, 9))
        baseline = run_batched_masks("sw3", writes, [MODEL] * 3, threads=1)
        monkeypatch.setenv("REPRO_KERNEL_THREADS", "2")
        results = run_batched_masks(
            "sw3", pack_write_masks(writes), [MODEL] * 3
        )
        for expected, got in zip(baseline, results):
            assert got.total_cost == expected.total_cost
            assert got.event_counts == expected.event_counts


class TestNumbaBackend:
    def test_numba_backend_is_registered(self):
        from repro.engine import available_backends

        assert "numba" in available_backends()

    @pytest.mark.parametrize("algorithm_name", FAMILY_NAMES)
    def test_numba_backend_matches_reference(self, algorithm_name):
        # With numba installed this runs the njit kernel; without it the
        # numpy fallback answers — identical bytes either way.
        schedule = Schedule.from_string("rwrrwwrwrrrwrw")
        forced = run(algorithm_name, schedule, MODEL, backend="numba")
        reference = run(algorithm_name, schedule, MODEL, backend="reference")
        assert forced.backend_name == "numba"
        assert forced.total_cost == reference.total_cost
        assert forced.event_counts == reference.event_counts
        assert forced.scheme_changes == reference.scheme_changes

    def test_numba_availability_flag_is_boolean(self):
        assert numba_available() in (True, False)
