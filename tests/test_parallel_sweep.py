"""The parallel sweep executor's determinism contract.

Parallel must equal serial byte-for-byte — with generated and concrete
schedules, with chaos runs under fault injection, through the
content-addressed cache, and at the run-all and CLI layers.
"""

import dataclasses

import numpy as np
import pytest

from repro.costmodels import ConnectionCostModel, MessageCostModel
from repro.engine import (
    EngineTask,
    FunctionTask,
    ResultCache,
    ScheduleSpec,
    SweepExecutor,
    serial_executor,
)
from repro.engine.parallel import _task_key
from repro.exceptions import InvalidParameterError
from repro.sim.faults import FaultConfig
from repro.workload import bernoulli_schedule, spawn_seeds

MODEL = ConnectionCostModel()


def _spec_grid(count=6, length=1_500, warmup=100):
    return [
        EngineTask(
            "sw9",
            ScheduleSpec(0.2 + 0.1 * index, length, seed=seed),
            MODEL,
            warmup=warmup,
            tag=index,
        )
        for index, seed in enumerate(spawn_seeds(7, count))
    ]


def _identities(outcomes):
    return [outcome.identity() for outcome in outcomes]


class TestSeeding:
    def test_spawned_children_are_positional(self):
        first = spawn_seeds(42, 4)
        second = spawn_seeds(42, 4)
        for a, b in zip(first, second):
            assert np.random.default_rng(a).random() == (
                np.random.default_rng(b).random()
            )

    def test_spawn_from_generator_rejected(self):
        with pytest.raises(InvalidParameterError):
            spawn_seeds(np.random.default_rng(1), 2)

    def test_spec_rejects_live_generator(self):
        with pytest.raises(InvalidParameterError):
            ScheduleSpec(0.3, 100, seed=np.random.default_rng(1))

    def test_spec_build_is_reproducible(self):
        spec = ScheduleSpec(0.3, 500, seed=spawn_seeds(3, 1)[0])
        assert spec.build().to_string() == spec.build().to_string()


class TestParallelEqualsSerial:
    @pytest.mark.parametrize("jobs", [2, 4])
    def test_spec_grid(self, jobs):
        tasks = _spec_grid()
        assert _identities(serial_executor().map(tasks)) == _identities(
            SweepExecutor(jobs=jobs).map(tasks)
        )

    @pytest.mark.parametrize("jobs", [2, 4])
    def test_shared_memory_schedules(self, jobs):
        schedule = bernoulli_schedule(0.4, 3_000, rng=11)
        tasks = [
            EngineTask(name, schedule, MODEL, tag=name)
            for name in ("st1", "st2", "sw1", "sw9", "t1_4", "t2_3")
        ]
        serial = serial_executor().map(tasks)
        parallel = SweepExecutor(jobs=jobs).map(tasks)
        assert _identities(serial) == _identities(parallel)
        # The vectorized/auto dispatch decision must survive the worker
        # boundary too.
        assert [o.backend_name for o in serial] == [
            o.backend_name for o in parallel
        ]

    @pytest.mark.parametrize("jobs", [2, 4])
    def test_chaos_runs_with_faults(self, jobs):
        schedule = bernoulli_schedule(0.35, 400, rng=2008)
        tasks = [
            EngineTask(
                "sw5",
                schedule,
                MODEL,
                faults=FaultConfig(
                    drop=rate, delay_jitter=0.02, seed=int(rate * 100),
                    episodes=((1.0, 4.0),),
                ),
                capture_kinds=True,
                capture_wire=True,
                tag=rate,
            )
            for rate in (0.02, 0.05, 0.1, 0.2)
        ]
        serial = serial_executor().map(tasks)
        parallel = SweepExecutor(jobs=jobs).map(tasks)
        assert _identities(serial) == _identities(parallel)
        assert all(o.wire is not None for o in parallel)
        assert all(o.event_kinds is not None for o in parallel)

    def test_timestamped_schedules_cross_shared_memory(self):
        from repro.workload import PoissonWorkload

        schedule = PoissonWorkload(3.0, 1.0, seed=5).generate(600)
        tasks = [
            EngineTask(name, schedule, MODEL, backend="protocol", tag=name)
            for name in ("sw1", "sw5", "st1")
        ]
        assert _identities(serial_executor().map(tasks)) == _identities(
            SweepExecutor(jobs=2).map(tasks)
        )

    def test_message_model_tasks(self):
        tasks = [
            dataclasses.replace(task, cost_model=MessageCostModel(0.8))
            for task in _spec_grid()
        ]
        assert _identities(serial_executor().map(tasks)) == _identities(
            SweepExecutor(jobs=2).map(tasks)
        )

    def test_function_tasks_ordered(self):
        tasks = [
            FunctionTask.call(divmod, index, 3) for index in range(10)
        ]
        assert SweepExecutor(jobs=2).map(tasks) == [
            divmod(index, 3) for index in range(10)
        ]

    def test_worker_failure_propagates(self):
        tasks = [FunctionTask.call(int, "not a number")]
        with pytest.raises(ValueError):
            SweepExecutor(jobs=1).map(tasks)

    def test_invalid_jobs_rejected(self):
        with pytest.raises(InvalidParameterError):
            SweepExecutor(jobs=0)


class TestInstrumentationAggregation:
    def test_report_totals_match_serial(self):
        tasks = _spec_grid()
        serial = SweepExecutor(jobs=1)
        serial.map(tasks)
        parallel = SweepExecutor(jobs=2)
        parallel.map(tasks)
        a, b = serial.report(), parallel.report()
        for key in ("runs", "requests", "total_cost", "backend_runs",
                    "event_counts"):
            assert a["dispatch"][key] == b["dispatch"][key], key
        assert b["tasks"] == len(tasks)
        assert b["executed"] == len(tasks)


class TestCachedSweeps:
    def test_hit_identical_to_cold(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        tasks = _spec_grid()
        executor = SweepExecutor(jobs=1, cache=cache)
        cold = executor.map(tasks)
        warm = executor.map(tasks)
        assert executor.cache_hits == len(tasks)
        assert _identities(cold) == _identities(warm)
        assert not any(o.from_cache for o in cold)
        assert all(o.from_cache for o in warm)

    def test_parallel_warm_hits_skip_the_pool(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        tasks = _spec_grid()
        SweepExecutor(jobs=2, cache=cache).map(tasks)
        warm = SweepExecutor(jobs=2, cache=cache)
        outcomes = warm.map(tasks)
        assert warm.executed == 0
        assert all(o.from_cache for o in outcomes)

    def test_key_includes_algorithm_and_model(self):
        schedule = bernoulli_schedule(0.3, 200, rng=1)
        base = EngineTask("sw9", schedule, MODEL)
        assert _task_key(base) != _task_key(
            dataclasses.replace(base, algorithm="sw5")
        )
        assert _task_key(base) != _task_key(
            dataclasses.replace(base, cost_model=MessageCostModel(0.5))
        )
        assert _task_key(base) != _task_key(
            dataclasses.replace(base, faults=FaultConfig(drop=0.1, seed=2))
        )

    def test_tag_never_in_key(self):
        schedule = bernoulli_schedule(0.3, 200, rng=1)
        assert _task_key(EngineTask("sw9", schedule, MODEL, tag="a")) == (
            _task_key(EngineTask("sw9", schedule, MODEL, tag="b"))
        )

    def test_unseeded_spec_uncacheable(self):
        task = EngineTask("sw9", ScheduleSpec(0.3, 100, seed=None), MODEL)
        assert _task_key(task) is None

    def test_hit_carries_requesting_tag(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        schedule = bernoulli_schedule(0.3, 200, rng=1)
        executor = SweepExecutor(jobs=1, cache=cache)
        executor.map([EngineTask("sw9", schedule, MODEL, tag="first")])
        [hit] = executor.map([EngineTask("sw9", schedule, MODEL, tag="second")])
        assert hit.from_cache and hit.tag == "second"


class TestRunAllParallel:
    IDS = ["fig1", "t-multi", "t-faults"]

    def _strip(self, results):
        return [
            {
                key: value
                for key, value in result.to_dict().items()
                if key not in ("elapsed_seconds", "from_cache")
            }
            for result in results
        ]

    def test_jobs2_identical_to_serial(self):
        from repro.experiments import run_all

        serial = run_all(quick=True, only=self.IDS)
        parallel = run_all(quick=True, jobs=2, only=self.IDS)
        assert self._strip(serial) == self._strip(parallel)

    def test_cache_hit_identical_to_cold(self, tmp_path):
        from repro.experiments import run_all

        cache = ResultCache(root=tmp_path)
        cold = run_all(quick=True, cache=cache, only=self.IDS)
        warm = run_all(quick=True, cache=cache, only=self.IDS)
        assert self._strip(cold) == self._strip(warm)
        assert all(result.from_cache for result in warm)
        assert not any(result.from_cache for result in cold)

    def test_unknown_only_id_rejected(self):
        from repro.exceptions import UnknownExperimentError
        from repro.experiments import run_all

        with pytest.raises(UnknownExperimentError):
            run_all(quick=True, only=["no-such-experiment"])


class TestCLIParallel:
    def test_run_all_summary_counts(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setattr(
            "repro.experiments.registry._EXPERIMENTS",
            [cls for cls in __import__(
                "repro.experiments.registry", fromlist=["_EXPERIMENTS"]
            )._EXPERIMENTS if cls.experiment_id in ("fig1", "t-multi")],
        )
        assert main(["run-all", "--quick", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "cache: 0 hits / 2 misses" in out
        assert main(["run-all", "--quick", "--jobs", "2"]) == 0
        assert "cache: 2 hits / 0 misses" in capsys.readouterr().out

    def test_run_all_no_cache_flag(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setattr(
            "repro.experiments.registry._EXPERIMENTS",
            [cls for cls in __import__(
                "repro.experiments.registry", fromlist=["_EXPERIMENTS"]
            )._EXPERIMENTS if cls.experiment_id == "fig1"],
        )
        assert main(["run-all", "--quick", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "cache:" not in out
        assert ResultCache(root=tmp_path).stats().entries == 0

    def test_simulate_replicates(self, capsys):
        from repro.cli import main

        assert main([
            "simulate", "sw9", "--theta", "0.3", "--length", "500",
            "--seed", "9", "--replicates", "3", "--jobs", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "replicates     : 3 (jobs=2)" in out
        assert out.count("replicate ") == 3

    def test_simulate_single_replicate_output_shape(self, capsys):
        from repro.cli import main

        assert main([
            "simulate", "sw9", "--theta", "0.3", "--length", "500",
            "--seed", "9",
        ]) == 0
        out = capsys.readouterr().out
        assert "total cost     :" in out
        assert "scheme changes :" in out
