"""Property-based tests (hypothesis) for the paper's core invariants.

These sweep arbitrary schedules and parameters rather than fixed
examples:

* competitiveness upper bounds hold on *every* schedule, not just the
  adversarial families;
* the offline optimum lower-bounds every online algorithm;
* the SWk scheme is a pure function of the last k requests;
* the analytic inequalities (Theorems 2 and 9) hold at arbitrary θ, ω;
* protocol simulation == abstract replay for arbitrary schedules.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import connection as ca
from repro.analysis import message as ma
from repro.analysis.majority import pi_k
from repro.core import (
    OfflineOptimal,
    SlidingWindow,
    SlidingWindowOne,
    make_algorithm,
    replay,
)
from repro.costmodels import ConnectionCostModel, MessageCostModel
from repro.sim import simulate_protocol
from repro.types import Schedule

schedule_strings = st.text(alphabet="rw", min_size=0, max_size=120)
nonempty_schedules = st.text(alphabet="rw", min_size=1, max_size=120)
thetas = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
omegas = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
odd_windows = st.integers(min_value=0, max_value=7).map(lambda n: 2 * n + 1)


class TestCompetitiveBounds:
    @given(text=schedule_strings, k=odd_windows)
    @settings(max_examples=150, deadline=None)
    def test_swk_connection_bound_on_any_schedule(self, text, k):
        """Theorem 4 upper bound: COST_SWk <= (k+1) * OPT + b.

        The additive constant absorbs start-up effects; b = k+1 is
        enough for every schedule hypothesis finds.
        """
        schedule = Schedule.from_string(text)
        model = ConnectionCostModel()
        name = f"sw{k}" if k > 1 else "sw1"
        online = replay(make_algorithm(name), schedule, model).total_cost
        optimal = OfflineOptimal(model).optimal_cost(schedule)
        assert online <= (k + 1) * optimal + (k + 1) + 1e-9

    @given(text=schedule_strings, omega=omegas)
    @settings(max_examples=150, deadline=None)
    def test_sw1_message_bound_on_any_schedule(self, text, omega):
        """Theorem 11 upper bound with additive slack 1+2w."""
        schedule = Schedule.from_string(text)
        model = MessageCostModel(omega)
        online = replay(SlidingWindowOne(), schedule, model).total_cost
        optimal = OfflineOptimal(model).optimal_cost(schedule)
        factor = 1 + 2 * omega
        assert online <= factor * optimal + factor + 1e-9

    @given(text=schedule_strings, omega=omegas,
           k=st.integers(min_value=1, max_value=4).map(lambda n: 2 * n + 1))
    @settings(max_examples=120, deadline=None)
    def test_swk_message_bound_on_any_schedule(self, text, omega, k):
        """Theorem 12 upper bound with additive slack equal to the factor."""
        schedule = Schedule.from_string(text)
        model = MessageCostModel(omega)
        online = replay(SlidingWindow(k), schedule, model).total_cost
        optimal = OfflineOptimal(model).optimal_cost(schedule)
        factor = (1 + omega / 2) * (k + 1) + omega
        assert online <= factor * optimal + factor + 1e-9

    @given(text=schedule_strings, m=st.integers(min_value=1, max_value=12))
    @settings(max_examples=120, deadline=None)
    def test_t1m_connection_bound_on_any_schedule(self, text, m):
        """Section 7.1: T1m is (m+1)-competitive."""
        schedule = Schedule.from_string(text)
        model = ConnectionCostModel()
        online = replay(make_algorithm(f"t1_{m}"), schedule, model).total_cost
        optimal = OfflineOptimal(model).optimal_cost(schedule)
        assert online <= (m + 1) * optimal + (m + 1) + 1e-9


class TestOfflineOptimality:
    @given(text=schedule_strings)
    @settings(max_examples=100, deadline=None)
    def test_offline_lower_bounds_all_algorithms(self, text):
        """The free-initial-choice offline optimum lower-bounds every
        online algorithm regardless of the algorithm's starting scheme
        (ST2 and T2m begin with a replica the one-copy-start offline
        would have to pay for)."""
        schedule = Schedule.from_string(text)
        for model in (ConnectionCostModel(), MessageCostModel(0.5)):
            optimal = OfflineOptimal(model, initial_scheme=None).optimal_cost(
                schedule
            )
            for name in ("st1", "st2", "sw1", "sw5", "t1_3", "t2_3"):
                online = replay(make_algorithm(name), schedule, model).total_cost
                assert optimal <= online + 1e-9

    @given(text=schedule_strings)
    @settings(max_examples=100, deadline=None)
    def test_offline_monotone_under_prefix(self, text):
        """OPT of a prefix never exceeds OPT of the whole schedule."""
        schedule = Schedule.from_string(text)
        model = ConnectionCostModel()
        offline = OfflineOptimal(model)
        whole = offline.optimal_cost(schedule)
        prefix = offline.optimal_cost(schedule[: len(schedule) // 2])
        assert prefix <= whole + 1e-9

    @given(text=schedule_strings, omega=omegas)
    @settings(max_examples=80, deadline=None)
    def test_offline_at_most_best_static(self, text, omega):
        """OPT is never worse than the better static method."""
        schedule = Schedule.from_string(text)
        model = MessageCostModel(omega)
        optimal = OfflineOptimal(model).optimal_cost(schedule)
        st1 = replay(make_algorithm("st1"), schedule, model).total_cost
        st2_cost = replay(make_algorithm("st2"), schedule, model).total_cost
        # ST2 starts with a copy the offline (starting one-copy) must
        # acquire, hence the one-acquisition allowance.
        assert optimal <= min(st1, st2_cost + model.acquire_cost) + 1e-9


class TestWindowSemantics:
    @given(text=nonempty_schedules, k=odd_windows)
    @settings(max_examples=150, deadline=None)
    def test_scheme_is_function_of_last_k_requests(self, text, k):
        """After any run, SWk holds a copy iff reads have the majority
        among the last k requests (pre-padded with writes)."""
        schedule = Schedule.from_string(text)
        algorithm = SlidingWindow(k)
        replay(algorithm, schedule, ConnectionCostModel())
        padded = "w" * k + schedule.to_string()
        last_k = padded[-k:]
        majority_reads = last_k.count("r") > last_k.count("w")
        assert algorithm.mobile_has_copy == majority_reads

    @given(text=schedule_strings, k=odd_windows)
    @settings(max_examples=100, deadline=None)
    def test_window_counter_consistency(self, text, k):
        algorithm = SlidingWindow(k)
        for symbol in text:
            algorithm.process(
                Schedule.from_string(symbol)[0].operation
            )
            assert algorithm.window.write_count == algorithm.window.recount()

    @given(text=schedule_strings)
    @settings(max_examples=100, deadline=None)
    def test_sw1_equals_swk1_schemes(self, text):
        """The delete-request optimization changes prices, never the
        allocation trajectory."""
        schedule = Schedule.from_string(text)
        model = ConnectionCostModel()
        optimized = replay(SlidingWindowOne(), schedule, model)
        unoptimized = replay(SlidingWindow(1), schedule, model)
        assert optimized.schemes == unoptimized.schemes
        assert optimized.total_cost == unoptimized.total_cost


class TestAnalyticInequalities:
    @given(theta=thetas, k=odd_windows)
    @settings(max_examples=200, deadline=None)
    def test_theorem2(self, theta, k):
        assert ca.expected_cost_swk(theta, k) >= min(
            theta, 1 - theta
        ) - 1e-12

    @given(theta=thetas, omega=omegas,
           k=st.integers(min_value=1, max_value=7).map(lambda n: 2 * n + 1))
    @settings(max_examples=200, deadline=None)
    def test_theorem9(self, theta, omega, k):
        floor = min(
            ma.expected_cost_sw1(theta, omega),
            ma.expected_cost_st1(theta, omega),
            ma.expected_cost_st2(theta),
        )
        assert ma.expected_cost_swk(theta, k, omega) >= floor - 1e-12

    @given(theta=thetas, k=odd_windows)
    @settings(max_examples=200, deadline=None)
    def test_pi_k_is_probability_and_symmetric(self, theta, k):
        value = pi_k(theta, k)
        assert 0.0 <= value <= 1.0
        assert pi_k(1.0 - theta, k) == pytest.approx(1.0 - value, abs=1e-9)

    @given(omega=omegas, k=st.integers(min_value=1, max_value=30).map(
        lambda n: 2 * n + 1))
    @settings(max_examples=200, deadline=None)
    def test_corollary2_bound(self, omega, k):
        if k == 1:
            return
        assert ma.average_cost_swk(k, omega) > ma.average_cost_swk_lower_bound(
            omega
        )


class TestProtocolEquivalence:
    @given(text=st.text(alphabet="rw", min_size=0, max_size=60))
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_protocol_matches_replay_on_any_schedule(self, text):
        schedule = Schedule.from_string(text)
        for name in ("sw3", "sw1", "t1_2", "t2_2", "st1", "st2"):
            protocol = simulate_protocol(name, schedule)
            abstract = replay(
                make_algorithm(name), schedule, ConnectionCostModel()
            )
            assert protocol.event_kinds == tuple(
                event.kind for event in abstract.events
            )

    @given(choices=st.lists(
        st.tuples(
            st.sampled_from(["alpha", "beta"]),
            st.sampled_from(["r", "w"]),
        ),
        min_size=0,
        max_size=50,
    ))
    @settings(max_examples=50, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_catalog_protocol_matches_per_item_replay(self, choices):
        """Per-item independence holds for arbitrary interleavings."""
        from repro.sim import simulate_catalog_protocol
        from repro.types import Operation, Request

        assignment = {"alpha": "sw3", "beta": "sw1"}
        schedule = Schedule(
            Request(
                Operation.READ if symbol == "r" else Operation.WRITE,
                objects=(item,),
            )
            for item, symbol in choices
        )
        run = simulate_catalog_protocol(assignment, schedule)
        for item, name in assignment.items():
            indices = [
                i for i, request in enumerate(schedule)
                if request.objects == (item,)
            ]
            subsequence = Schedule(schedule[i] for i in indices)
            abstract = replay(
                make_algorithm(name), subsequence, ConnectionCostModel()
            )
            assert [run.event_kinds[i] for i in indices] == [
                event.kind for event in abstract.events
            ]
