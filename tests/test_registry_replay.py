"""Unit tests for the algorithm registry and the replay engine."""

from __future__ import annotations

import pytest

from repro.core import (
    SlidingWindow,
    SlidingWindowOne,
    StaticOneCopy,
    StaticTwoCopies,
    ThresholdOneCopy,
    ThresholdTwoCopies,
    available_algorithms,
    make_algorithm,
    replay,
    replay_many,
)
from repro.costmodels import ConnectionCostModel, CostEventKind, MessageCostModel
from repro.exceptions import InvalidParameterError, UnknownAlgorithmError
from repro.types import AllocationScheme, Schedule


class TestRegistry:
    @pytest.mark.parametrize(
        "name, expected_type",
        [
            ("st1", StaticOneCopy),
            ("st2", StaticTwoCopies),
            ("sw1", SlidingWindowOne),
            ("sw1-unoptimized", SlidingWindow),
            ("sw9", SlidingWindow),
            ("t1_15", ThresholdOneCopy),
            ("t2_7", ThresholdTwoCopies),
        ],
    )
    def test_construction(self, name, expected_type):
        assert isinstance(make_algorithm(name), expected_type)

    def test_case_and_whitespace_insensitive(self):
        assert isinstance(make_algorithm("  ST1 "), StaticOneCopy)
        assert isinstance(make_algorithm("SW9"), SlidingWindow)

    def test_window_size_parsed(self):
        assert make_algorithm("sw15").k == 15

    def test_threshold_parsed(self):
        assert make_algorithm("t1_4").m == 4

    def test_even_window_rejected(self):
        with pytest.raises(InvalidParameterError):
            make_algorithm("sw4")

    @pytest.mark.parametrize("bad", ["", "sw", "t1_", "foo", "st3", "sw-3"])
    def test_unknown_names_rejected(self, bad):
        with pytest.raises(UnknownAlgorithmError):
            make_algorithm(bad)

    def test_available_algorithms_lists_families(self):
        names = available_algorithms()
        assert "st1" in names
        assert "st2" in names
        assert any(name.startswith("sw") for name in names)

    def test_every_variant_constructible(self, algorithm_name):
        algorithm = make_algorithm(algorithm_name)
        assert algorithm.scheme in (
            AllocationScheme.ONE_COPY,
            AllocationScheme.TWO_COPIES,
        )


class TestReplay:
    def test_total_is_sum_of_events(self):
        schedule = Schedule.from_string("rwrw")
        result = replay(make_algorithm("st1"), schedule, ConnectionCostModel())
        assert result.total_cost == sum(e.cost for e in result.events)

    def test_event_per_request(self):
        schedule = Schedule.from_string("rwrwrw")
        result = replay(make_algorithm("sw3"), schedule, ConnectionCostModel())
        assert len(result.events) == len(schedule)
        assert len(result.schemes) == len(schedule)

    def test_mean_cost(self):
        schedule = Schedule.from_string("rrrr")
        result = replay(make_algorithm("st1"), schedule, ConnectionCostModel())
        assert result.mean_cost == 1.0

    def test_mean_cost_empty(self):
        result = replay(make_algorithm("st1"), Schedule(), ConnectionCostModel())
        assert result.mean_cost == 0.0
        assert result.total_cost == 0.0

    def test_event_counts(self):
        schedule = Schedule.from_string("rrww")
        result = replay(make_algorithm("st1"), schedule, ConnectionCostModel())
        counts = result.event_counts()
        assert counts[CostEventKind.REMOTE_READ] == 2
        assert counts[CostEventKind.WRITE_NO_COPY] == 2

    def test_allocation_changes(self):
        schedule = Schedule.from_string("rwrw")
        result = replay(make_algorithm("sw1"), schedule, ConnectionCostModel())
        # r (allocate), w (drop), r (allocate), w (drop) -> 3 changes
        # between consecutive post-request schemes.
        assert result.allocation_changes() == 3

    def test_fresh_replay_is_idempotent(self):
        algorithm = make_algorithm("sw5")
        schedule = Schedule.from_string("rrrrwwrw")
        first = replay(algorithm, schedule, ConnectionCostModel())
        second = replay(algorithm, schedule, ConnectionCostModel())
        assert first.total_cost == second.total_cost
        assert first.schemes == second.schemes

    def test_continuation_with_fresh_false(self):
        algorithm = make_algorithm("sw3")
        model = ConnectionCostModel()
        part1 = Schedule.from_string("rr")
        part2 = Schedule.from_string("r")
        replay(algorithm, part1, model, fresh=False)
        result = replay(algorithm, part2, model, fresh=False)
        # After rr the window majority is reads, so the third read is local.
        assert result.events[0].kind is CostEventKind.LOCAL_READ

    def test_split_replay_equals_whole(self):
        """Replaying in segments with fresh=False equals one replay."""
        whole = Schedule.from_string("rwrrwwrrrwwwrw")
        model = MessageCostModel(0.4)
        one_shot = replay(make_algorithm("sw5"), whole, model)
        algorithm = make_algorithm("sw5")
        algorithm.reset()
        total = 0.0
        for cut in (whole[:5], whole[5:9], whole[9:]):
            total += replay(algorithm, cut, model, fresh=False).total_cost
        assert total == pytest.approx(one_shot.total_cost)

    def test_replay_many(self):
        schedule = Schedule.from_string("rwrw")
        results = replay_many(
            [make_algorithm("st1"), make_algorithm("st2")],
            schedule,
            ConnectionCostModel(),
        )
        assert set(results) == {"st1", "st2"}
        assert results["st1"].total_cost == 2.0  # two reads
        assert results["st2"].total_cost == 2.0  # two writes
