"""Tests for the Markdown report generator."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.experiments.harness import Check, ExperimentResult
from repro.experiments.report import _markdown_table, render_markdown


def sample_result(passed=True) -> ExperimentResult:
    result = ExperimentResult("fig-test", "A Title", "a claim")
    result.rows.append({"theta": 0.5, "cost": 0.25})
    result.checks.append(Check("the check", passed, "details"))
    result.figures.append("ascii\nfigure")
    result.elapsed_seconds = 1.25
    return result


class TestMarkdownTable:
    def test_shapes_columns_from_first_seen(self):
        table = _markdown_table([{"b": 1}, {"a": 2, "b": 3}])
        header = table.splitlines()[0]
        assert header.index("b") < header.index("a")

    def test_escapes_pipes(self):
        table = _markdown_table([{"x": "a|b"}])
        assert "a\\|b" in table

    def test_empty(self):
        assert "no rows" in _markdown_table([])

    def test_floats_formatted(self):
        assert "0.2500" in _markdown_table([{"x": 0.25}])


class TestRenderMarkdown:
    def test_summary_counts(self):
        text = render_markdown([sample_result(), sample_result()])
        assert "**2/2 checks passed** across 2 experiments" in text

    def test_sections_and_figures(self):
        text = render_markdown([sample_result()])
        assert "## `fig-test` — A Title" in text
        assert "> a claim" in text
        assert "ascii\nfigure" in text
        assert "- [x] the check — details" in text

    def test_failures_marked(self):
        text = render_markdown([sample_result(passed=False)])
        assert "❌" in text
        assert "- [ ] the check" in text


class TestCliReport:
    def test_report_command_writes_file(self, tmp_path, capsys, monkeypatch):
        # Stub run_all so the test does not execute the whole suite.
        import repro.cli as cli_module

        monkeypatch.setattr(
            cli_module, "run_all", lambda quick=False: [sample_result()]
        )
        target = tmp_path / "report.md"
        assert main(["report", "--out", str(target), "--quick"]) == 0
        content = target.read_text()
        assert "Reproduction report" in content
        assert "wrote" in capsys.readouterr().out

    def test_report_fails_on_failed_experiment(self, tmp_path, monkeypatch):
        import repro.cli as cli_module

        monkeypatch.setattr(
            cli_module,
            "run_all",
            lambda quick=False: [sample_result(passed=False)],
        )
        target = tmp_path / "report.md"
        assert main(["report", "--out", str(target)]) == 1
