"""The content-addressed result cache: keys, storage, eviction, CLI."""

import os
import pickle

import numpy as np
import pytest

from repro.engine.cache import (
    CACHE_SCHEMA,
    ResultCache,
    default_cache,
    digest_parts,
)
from repro.exceptions import InvalidParameterError
from repro.sim.faults import FaultConfig
from repro.workload import bernoulli_schedule


class TestDigestParts:
    def test_deterministic(self):
        assert digest_parts("a", 1, 2.5) == digest_parts("a", 1, 2.5)

    def test_order_sensitive(self):
        assert digest_parts("a", "b") != digest_parts("b", "a")

    def test_no_concatenation_collisions(self):
        assert digest_parts("ab", "c") != digest_parts("a", "bc")
        assert digest_parts(("a",), "b") != digest_parts("a", ("b",))

    def test_type_distinctions(self):
        assert digest_parts(1) != digest_parts("1")
        assert digest_parts(1) != digest_parts(True)
        assert digest_parts(None) != digest_parts("None")

    def test_float_precision_preserved(self):
        assert digest_parts(0.1) != digest_parts(0.1 + 1e-17) or (
            0.1 == 0.1 + 1e-17
        )
        assert digest_parts(0.30000000000000004) != digest_parts(0.3)

    def test_dict_key_order_irrelevant(self):
        assert digest_parts({"a": 1, "b": 2}) == digest_parts({"b": 2, "a": 1})

    def test_dataclass_encoding(self):
        calm = FaultConfig(delay_jitter=0.02, seed=1)
        chaos = FaultConfig(drop=0.1, delay_jitter=0.02, seed=1)
        assert digest_parts(calm) == digest_parts(
            FaultConfig(delay_jitter=0.02, seed=1)
        )
        assert digest_parts(calm) != digest_parts(chaos)

    def test_numpy_scalars_match_python(self):
        assert digest_parts(np.int64(7)) == digest_parts(7)

    def test_unencodable_raises(self):
        with pytest.raises(InvalidParameterError):
            digest_parts(object())


class TestScheduleContentDigest:
    def test_same_content_same_digest(self):
        a = bernoulli_schedule(0.3, 500, rng=5)
        b = bernoulli_schedule(0.3, 500, rng=5)
        assert a.content_digest() == b.content_digest()

    def test_different_content_different_digest(self):
        a = bernoulli_schedule(0.3, 500, rng=5)
        b = bernoulli_schedule(0.3, 500, rng=6)
        assert a.content_digest() != b.content_digest()

    def test_timestamps_change_digest(self):
        a = bernoulli_schedule(0.3, 50, rng=5)
        stamped = a.with_timestamps([float(i) for i in range(50)])
        assert a.content_digest() != stamped.content_digest()


class TestResultCache:
    def test_miss_then_hit_roundtrip(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        key = digest_parts("k")
        assert cache.get(key) is ResultCache.MISS
        payload = {"rows": [1, 2, 3], "value": 0.5}
        cache.put(key, payload)
        assert cache.get(key) == payload
        assert cache.stats().entries == 1

    def test_none_is_a_valid_cached_value(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        key = digest_parts("none")
        cache.put(key, None)
        assert cache.get(key) is None

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        key = digest_parts("corrupt")
        cache.put(key, [1, 2, 3])
        path = cache._path(key)
        path.write_bytes(b"not a pickle")
        assert cache.get(key) is ResultCache.MISS
        assert not path.exists()

    def test_eviction_keeps_recently_used(self, tmp_path):
        blob = b"x" * 10_000
        cache = ResultCache(root=tmp_path, max_bytes=45_000)
        keys = [digest_parts("evict", i) for i in range(4)]
        for key in keys:
            cache.put(key, blob)
        # Touch the first key so it is the most recently used, then
        # push the store over the cap.
        os.utime(cache._path(keys[0]), None)
        cache.put(digest_parts("evict", 99), blob)
        assert cache.get(keys[0]) != ResultCache.MISS
        assert cache.stats().total_bytes <= 45_000

    def test_clear(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        for i in range(3):
            cache.put(digest_parts("clear", i), i)
        assert cache.clear() == 3
        assert cache.stats().entries == 0

    def test_invalid_cap_rejected(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            ResultCache(root=tmp_path, max_bytes=0)


class TestDefaultCache:
    def test_env_dir_respected(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "c"))
        cache = default_cache()
        assert cache is not None
        assert str(cache.root) == str(tmp_path / "c")

    def test_no_cache_env_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        assert default_cache() is None

    def test_schema_marker_in_keys(self):
        # The schema string participates in every executor key; bumping
        # it must change digests.
        assert digest_parts(CACHE_SCHEMA, "x") != digest_parts(
            "repro-cache/0", "x"
        )


class TestCacheCLI:
    def test_stats_and_clear(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cache = ResultCache(root=tmp_path)
        cache.put(digest_parts("cli"), {"x": 1})
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "entries         : 1" in out
        assert main(["cache", "clear"]) == 0
        assert "removed 1" in capsys.readouterr().out
        assert cache.stats().entries == 0
