"""Tests for the sharded multi-tenant allocation service."""

from __future__ import annotations

import numpy as np
import pytest

from repro.costmodels import ConnectionCostModel, MessageCostModel
from repro.costmodels.base import CostEventKind
from repro.engine import run as engine_run
from repro.exceptions import (
    InvalidParameterError,
    ServiceError,
    ServiceOverloadError,
    UnknownAlgorithmError,
)
from repro.service import (
    AllocationService,
    LoadGenerator,
    ServiceConfig,
    ServiceCounters,
    SessionKey,
    run_self_test,
    shard_of,
)
from repro.types import READ, WRITE, Operation, Schedule


def _key(index: int) -> SessionKey:
    return SessionKey(f"client-{index}", f"item-{index % 5}")


class TestKeys:
    def test_shard_placement_is_deterministic_and_in_range(self):
        for index in range(200):
            key = _key(index)
            shard = shard_of(key, 16)
            assert shard == shard_of(SessionKey(key.client, key.object), 16)
            assert 0 <= shard < 16

    def test_namespace_separates_populations(self):
        plain = SessionKey("c", "x")
        test = SessionKey("c", "x", "test")
        assert plain.digest() != test.digest()

    def test_empty_fields_rejected(self):
        with pytest.raises(InvalidParameterError):
            SessionKey("", "x")
        with pytest.raises(InvalidParameterError):
            shard_of(SessionKey("c", "x"), 0)


class TestSessionLifecycle:
    def test_duplicate_open_rejected(self):
        service = AllocationService()
        service.open_session(_key(0), "sw3")
        with pytest.raises(ServiceError):
            service.open_session(_key(0), "sw3")

    def test_unknown_and_unhostable_algorithms_rejected(self):
        service = AllocationService()
        with pytest.raises(UnknownAlgorithmError):
            service.open_session(_key(0), "bogus")
        with pytest.raises(UnknownAlgorithmError):
            service.open_session(_key(0), "ewma_20")

    def test_submit_to_unopened_session_rejected(self):
        service = AllocationService()
        with pytest.raises(ServiceError):
            service.submit(_key(0), READ)

    def test_open_reports_home_shard(self):
        service = AllocationService(ServiceConfig(num_shards=8))
        shard = service.open_session(_key(3), "t1_2")
        assert shard == shard_of(_key(3), 8)


class TestDecisions:
    def test_serve_one_matches_protocol_semantics(self):
        service = AllocationService()
        key = _key(1)
        service.open_session(key, "st2")
        assert service.serve_one(key, WRITE) is CostEventKind.WRITE_PROPAGATED
        assert service.serve_one(key, READ) is CostEventKind.LOCAL_READ

    def test_queued_and_blocked_paths_agree_with_engine(self):
        """Mixed submit()/submit_block() decisions replay byte-identically."""
        rng = np.random.default_rng(11)
        service = AllocationService(ServiceConfig(num_shards=4))
        keys = [_key(i) for i in range(12)]
        names = ["sw5", "sw1", "t2_3", "st1"] * 3
        for key, name in zip(keys, names):
            service.open_session(key, name, MessageCostModel(0.4))
        history = {key: [] for key in keys}
        # A few single submissions...
        for key in keys[:6]:
            for _ in range(3):
                bit = bool(rng.random() < 0.5)
                service.submit(key, WRITE if bit else READ)
                history[key].append(bit)
        service.drain_all()
        # ...then two uniform blocks over the whole population.
        plan = service.plan_block(keys)
        for _ in range(2):
            matrix = rng.random((len(keys), 7)) < 0.5
            service.submit_block(plan, matrix)
            for row, key in enumerate(keys):
                history[key].extend(bool(bit) for bit in matrix[row])
        for key, name in zip(keys, names):
            bits = history[key]
            schedule = Schedule.from_string(
                "".join("w" if bit else "r" for bit in bits)
            )
            reference = engine_run(
                name, schedule, MessageCostModel(0.4), stream=False
            )
            info = service.session_info(key)
            assert info["total_cost"] == reference.total_cost
            counts = {
                kind.value: count
                for kind, count in reference.event_counts.items()
            }
            assert info["event_counts"] == counts

    def test_replay_verify_passes_and_audit_conserves(self):
        service = AllocationService(ServiceConfig(num_shards=4))
        rng = np.random.default_rng(5)
        keys = [_key(i) for i in range(20)]
        for index, key in enumerate(keys):
            service.open_session(key, ["sw9", "sw1", "t1_3", "st2"][index % 4])
        plan = service.plan_block(keys)
        service.submit_block(plan, rng.random((20, 31)) < 0.4)
        audit = service.audit()
        assert audit["sessions_audited"] == 20
        assert audit["requests_audited"] == 20 * 31
        replay = service.replay_verify(sample=20)
        assert replay["sessions_replayed"] == 20
        assert replay["decisions_replayed"] == 20 * 31

    def test_audit_requires_recording(self):
        service = AllocationService(ServiceConfig(record_decisions=False))
        service.open_session(_key(0), "sw3")
        service.serve_one(_key(0), READ)
        with pytest.raises(ServiceError):
            service.audit()
        with pytest.raises(ServiceError):
            service.replay_verify()


class TestBackpressure:
    def test_auto_drain_levels_the_queue(self):
        counters = ServiceCounters()
        service = AllocationService(
            ServiceConfig(num_shards=1, drain_threshold=5),
            instrumentation=counters,
        )
        key = _key(0)
        service.open_session(key, "sw3")
        for _ in range(12):
            service.submit(key, READ)
        # Two automatic drains at depth 5; two operations still queued.
        assert counters.backpressure_events == 2
        assert service.decisions == 10
        assert service.drain_all() == 2

    def test_overload_raises_without_auto_drain(self):
        service = AllocationService(
            ServiceConfig(
                num_shards=1, drain_threshold=2, max_queue_depth=3,
                auto_drain=False,
            )
        )
        key = _key(0)
        service.open_session(key, "sw3")
        for _ in range(3):
            service.submit(key, WRITE)
        with pytest.raises(ServiceOverloadError):
            service.submit(key, WRITE)
        service.drain_shard(shard_of(key, 1))
        service.submit(key, WRITE)  # queue has room again

    def test_overload_carries_a_retry_after_hint(self):
        service = AllocationService(
            ServiceConfig(
                num_shards=1, drain_threshold=2, max_queue_depth=2,
                auto_drain=False,
            )
        )
        key = _key(0)
        service.open_session(key, "sw3")
        service.submit(key, WRITE)
        service.submit(key, WRITE)
        with pytest.raises(ServiceOverloadError) as excinfo:
            service.submit(key, WRITE)
        # No drain observed yet: the hint is the conservative default.
        assert excinfo.value.retry_after > 0
        assert excinfo.value.shard == 0
        assert excinfo.value.depth == 2
        service.drain_all()
        service.submit(key, WRITE)
        service.submit(key, WRITE)
        with pytest.raises(ServiceOverloadError) as excinfo:
            service.submit(key, WRITE)
        # After a drain the hint is depth over the observed drain rate.
        assert 0 < excinfo.value.retry_after < 10.0

    def test_shed_submissions_do_not_corrupt_the_ledgers(self):
        # Graceful shedding: a rejected submission must leave session
        # state, queues and the decision log untouched, so the audit
        # and the engine replay still pass afterwards.
        service = AllocationService(
            ServiceConfig(
                num_shards=1, drain_threshold=2, max_queue_depth=2,
                auto_drain=False,
            )
        )
        key = _key(0)
        service.open_session(key, "sw3")
        accepted = 0
        for index in range(20):
            try:
                service.submit(key, WRITE if index % 3 else READ)
                accepted += 1
            except ServiceOverloadError:
                service.drain_all()
        service.drain_all()
        assert service.decisions == accepted
        audit = service.audit()
        assert audit["requests_audited"] == accepted
        replay = service.replay_verify(sample=1)
        assert replay["decisions_replayed"] == accepted


class TestInstrumentation:
    def test_counters_stay_bounded_and_accurate(self):
        counters = ServiceCounters()
        service = AllocationService(
            ServiceConfig(num_shards=2), instrumentation=counters
        )
        keys = [_key(i) for i in range(6)]
        for key in keys:
            service.open_session(key, "sw3")
        plan = service.plan_block(keys)
        service.submit_block(plan, np.zeros((6, 10), dtype=bool))
        assert counters.sessions_opened == 6
        assert counters.drained_decisions == 60
        assert counters.requests == 60
        assert not counters.dispatch_log  # bounded by construction
        summary = counters.summary()
        assert summary["drained_decisions"] == 60

    def test_metrics_reports_occupancy(self):
        service = AllocationService(ServiceConfig(num_shards=4))
        for index in range(10):
            service.open_session(_key(index), "st1")
        metrics = service.metrics()
        assert metrics["sessions"] == 10
        assert 1 <= metrics["occupied_shards"] <= 4
        assert metrics["algorithms"] == ["st1"]


class TestLoadGenerator:
    def test_rounds_are_individually_reproducible(self):
        generator = LoadGenerator(50, seed=3)
        again = LoadGenerator(50, seed=3)
        assert np.array_equal(
            generator.round_matrix(4, 20), again.round_matrix(4, 20)
        )
        assert generator.keys() == again.keys()

    def test_different_seeds_differ(self):
        a = LoadGenerator(50, seed=3).round_matrix(0, 20)
        b = LoadGenerator(50, seed=4).round_matrix(0, 20)
        assert not np.array_equal(a, b)


class TestFailoverDrill:
    def test_drill_needs_a_replica_set(self):
        service = AllocationService(ServiceConfig(num_shards=2))
        with pytest.raises(ServiceError, match="replica set"):
            service.failover_drill(0)

    def test_drill_reports_byte_identity(self):
        counters = ServiceCounters()
        service = AllocationService(
            ServiceConfig(num_shards=2, replicas=3),
            instrumentation=counters,
        )
        service.open_session(_key(0), "sw3")
        report = service.failover_drill(0, requests=150)
        assert report["byte_identical"] is True
        assert report["replicas"] == 3
        assert report["failovers"] + report["kills_skipped"] == 1
        assert counters.failover_drills == 1
        assert counters.failover_divergences == 0

    def test_drill_is_seeded_and_repeatable(self):
        service = AllocationService(ServiceConfig(num_shards=2, replicas=3))
        first = service.failover_drill(1, requests=150, seed=42)
        second = service.failover_drill(1, requests=150, seed=42)
        assert first == second

    def test_drill_rejects_bad_shard(self):
        service = AllocationService(ServiceConfig(num_shards=2, replicas=3))
        with pytest.raises(InvalidParameterError):
            service.failover_drill(7)

    def test_config_validates_replica_count(self):
        with pytest.raises(InvalidParameterError):
            ServiceConfig(replicas=9)


class TestSelfTest:
    def test_small_self_test_verifies(self):
        report = run_self_test(
            400, rounds=2, ops_per_round=10, num_shards=8, replay_sample=8
        )
        assert report["decisions"] == 400 * 2 * 10
        assert report["audit"]["shards_audited"] == 8
        assert report["replay"]["sessions_replayed"] == 8
        assert report["decisions_per_sec"] > 0
        assert report["failover"] is None

    def test_self_test_with_replicas_drills_failover(self):
        report = run_self_test(
            100, rounds=1, ops_per_round=5, num_shards=4,
            replay_sample=2, audit_sessions_per_shard=2,
            replicas=3, failover_drills=2,
        )
        failover = report["failover"]
        assert failover["drills"] == 2
        assert failover["byte_identical"] is True
        assert failover["failovers"] + failover["kills_skipped"] == 2
