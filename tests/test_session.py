"""Unit tests for the incremental allocation-session core."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import make_algorithm, replay
from repro.core.session import (
    AlgorithmSpec,
    AllocationSession,
    Decision,
    parse_algorithm_name,
)
from repro.costmodels import ConnectionCostModel, MessageCostModel
from repro.exceptions import InvalidParameterError, UnknownAlgorithmError
from repro.types import READ, WRITE, Operation, Schedule

ALL_NAMES = [
    "st1", "st2", "sw1", "sw1-unoptimized", "sw3", "sw9",
    "t1_1", "t1_4", "t2_1", "t2_4",
]


def _ops(text: str):
    return [Operation.from_symbol(symbol) for symbol in text]


class TestSpecParsing:
    @pytest.mark.parametrize("name, family, param", [
        ("st1", "st1", 0),
        ("st2", "st2", 0),
        ("sw1", "sw1", 0),
        ("sw1-unoptimized", "swk", 1),
        ("sw9", "swk", 9),
        ("t1_15", "t1", 15),
        ("t2_3", "t2", 3),
    ])
    def test_recognized_names(self, name, family, param):
        spec = parse_algorithm_name(name)
        assert spec == AlgorithmSpec(family, param)
        assert spec.name == name

    @pytest.mark.parametrize("name", ["", "sw", "ewma_20", "hsw9_2", "bogus"])
    def test_unknown_names_parse_to_none(self, name):
        assert parse_algorithm_name(name) is None

    @pytest.mark.parametrize("family, param", [
        ("swk", 2), ("swk", 0), ("t1", 0), ("t2", -1), ("st1", 3),
    ])
    def test_invalid_parameters_rejected(self, family, param):
        with pytest.raises(InvalidParameterError):
            AlgorithmSpec(family, param)

    def test_from_name_rejects_unknown(self):
        with pytest.raises(UnknownAlgorithmError):
            AllocationSession.from_name("nope")


class TestFeedMatchesReplay:
    """feed() is the one decision procedure; replay must agree exactly."""

    SCHEDULES = [
        "", "r", "w", "rrrr", "wwww", "rwrwrwrw", "wrrrwrw",
        "rrrwwwrrrwww" * 4, "wwwwrrrrwwwwrrrr" * 3,
    ]

    @pytest.mark.parametrize("name", ALL_NAMES)
    @pytest.mark.parametrize("text", SCHEDULES)
    def test_event_kinds_identical(self, name, text):
        session = AllocationSession.from_name(name)
        kinds = tuple(session.feed(op).kind for op in _ops(text))
        result = replay(
            make_algorithm(name), Schedule.from_string(text),
            ConnectionCostModel(),
        )
        assert kinds == tuple(event.kind for event in result.events)

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_randomized_long_schedule(self, name):
        rng = np.random.default_rng([7, hash(name) % (2**32)])
        text = "".join("w" if bit else "r" for bit in rng.random(800) < 0.45)
        session = AllocationSession.from_name(name)
        kinds = tuple(session.feed(op).kind for op in _ops(text))
        result = replay(
            make_algorithm(name), Schedule.from_string(text),
            MessageCostModel(0.3),
        )
        assert kinds == tuple(event.kind for event in result.events)

    def test_decision_flags_track_scheme(self):
        session = AllocationSession.from_name("sw3")
        copies = []
        for op in _ops("wwrrrwww"):
            decision = session.feed(op)
            assert isinstance(decision, Decision)
            if decision.allocated:
                assert decision.mobile_has_copy
            if decision.deallocated:
                assert not decision.mobile_has_copy
            copies.append(decision.mobile_has_copy)
        # rr flips the 3-window majority to reads, www flips it back.
        assert copies == [False, False, False, True, True, True, False, False]


class TestCarryBits:
    """The carry encoding is a sufficient statistic for future behavior."""

    @pytest.mark.parametrize("name", ALL_NAMES)
    @pytest.mark.parametrize("prefix", ["", "r", "w", "rrrw", "wwrrrwrw",
                                        "rwrwwwrrr", "wwwwww", "rrrrrr"])
    def test_replaying_carry_reproduces_state(self, name, prefix):
        fed = AllocationSession.from_name(name)
        for op in _ops(prefix):
            fed.feed(op)
        rebuilt = AllocationSession.from_name(name)
        for bit in fed.carry_bits():
            rebuilt.feed(WRITE if bit else READ)
        suffix = _ops("rwrrwwrwrrrwww")
        fed_kinds = [fed.feed(op).kind for op in suffix]
        rebuilt_kinds = [rebuilt.feed(op).kind for op in suffix]
        assert fed_kinds == rebuilt_kinds

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_carry_length_matches_spec(self, name):
        session = AllocationSession.from_name(name)
        assert session.carry_bits().shape == (session.spec.carry_length,)
        session.feed(READ)
        session.feed(WRITE)
        assert session.carry_bits().shape == (session.spec.carry_length,)


class TestSessionBackedAlgorithms:
    """The classic classes are thin adapters over the session core."""

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_registry_instances_expose_their_session(self, name):
        algorithm = make_algorithm(name)
        assert algorithm.session.spec == parse_algorithm_name(name)

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_reset_rebuilds_fresh_session(self, name):
        algorithm = make_algorithm(name)
        fresh_signature = algorithm.state_signature()
        schedule = Schedule.from_string("rwrrwwrr")
        replay(algorithm, schedule, ConnectionCostModel(), fresh=False)
        algorithm.reset()
        assert algorithm.state_signature() == fresh_signature
