"""Property suite: session feeds are byte-identical to engine runs.

The tentpole invariant of the session refactor: for every hostable
algorithm family, feeding a schedule operation-by-operation through
:class:`~repro.core.session.AllocationSession` produces exactly the
decisions — and therefore exactly the costs — of
:func:`repro.engine.run` on the same schedule, whichever backend the
dispatcher picks, and even when the run goes over the faulty wire.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.registry import make_algorithm
from repro.core.session import AllocationSession
from repro.costmodels import ConnectionCostModel, MessageCostModel
from repro.engine import run as engine_run
from repro.engine.base import total_from_counts
from repro.sim.faults import FaultConfig
from repro.types import Operation, Schedule
from repro.workload.adversary import (
    GreedyAdversary,
    alternating,
    swk_tight_schedule,
    threshold_tight_schedule,
)
from repro.workload.regimes import uniform_theta_regimes

schedule_texts = st.text(alphabet="rw", min_size=0, max_size=100)
short_texts = st.text(alphabet="rw", min_size=1, max_size=40)
omegas = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)

#: One representative per family plus parameter variety.
FAMILY_NAMES = st.sampled_from([
    "st1", "st2", "sw1", "sw1-unoptimized", "sw3", "sw5", "sw9",
    "t1_1", "t1_3", "t1_8", "t2_1", "t2_3", "t2_8",
])


def _session_kinds(name: str, text: str):
    session = AllocationSession.from_name(name)
    return tuple(
        session.feed(Operation.from_symbol(symbol)).kind for symbol in text
    )


def _session_counts(kinds):
    counts = {}
    for kind in kinds:
        counts[kind] = counts.get(kind, 0) + 1
    return counts


class TestSessionMatchesEngine:
    @given(name=FAMILY_NAMES, text=schedule_texts)
    @settings(max_examples=200, deadline=None)
    def test_decisions_identical_auto_backend(self, name, text):
        kinds = _session_kinds(name, text)
        result = engine_run(
            name, Schedule.from_string(text), ConnectionCostModel(),
            stream=False,
        )
        assert result.event_kinds == kinds

    @given(name=FAMILY_NAMES, text=schedule_texts, omega=omegas)
    @settings(max_examples=100, deadline=None)
    def test_costs_identical_under_any_message_model(self, name, text, omega):
        model = MessageCostModel(omega)
        kinds = _session_kinds(name, text)
        result = engine_run(
            name, Schedule.from_string(text), model, stream=True,
        )
        assert result.event_counts == _session_counts(kinds)
        assert result.total_cost == total_from_counts(
            _session_counts(kinds), model
        )

    @given(name=FAMILY_NAMES, text=schedule_texts)
    @settings(max_examples=60, deadline=None)
    def test_reference_backend_agrees(self, name, text):
        kinds = _session_kinds(name, text)
        result = engine_run(
            name, Schedule.from_string(text), ConnectionCostModel(),
            backend="reference", stream=False,
        )
        assert result.event_kinds == kinds


def _session_kinds_for_schedule(name, schedule):
    session = AllocationSession.from_name(name)
    return tuple(
        session.feed(request.operation).kind for request in schedule
    )


class TestSessionMatchesEngineOnHostileStreams:
    """Differential replay on adversary- and regime-generated traffic.

    Random ``rw`` text rarely exercises the worst-case request patterns;
    these cases feed the streams built to hurt each family — greedy
    adversaries, tight cycles, regime switches — through the session and
    demand byte-identity with the engine anyway.
    """

    @given(
        name=FAMILY_NAMES,
        seed=st.integers(min_value=0, max_value=2**16),
        length=st.integers(min_value=1, max_value=120),
    )
    @settings(max_examples=40, deadline=None)
    def test_greedy_adversary_stream_identical(self, name, seed, length):
        model = ConnectionCostModel()
        schedule = GreedyAdversary(
            make_algorithm(name), model, seed=seed
        ).generate(length)
        kinds = _session_kinds_for_schedule(name, schedule)
        result = engine_run(name, schedule, model, stream=False)
        assert result.event_kinds == kinds

    @given(name=FAMILY_NAMES)
    @settings(max_examples=30, deadline=None)
    def test_tight_cycles_identical(self, name):
        model = ConnectionCostModel()
        for schedule in (
            swk_tight_schedule(3, cycles=12),
            swk_tight_schedule(9, cycles=5),
            threshold_tight_schedule(2, cycles=15),
            alternating(40),
            alternating(40, read_first=False),
        ):
            kinds = _session_kinds_for_schedule(name, schedule)
            result = engine_run(name, schedule, model, stream=False)
            assert result.event_kinds == kinds

    @given(
        name=FAMILY_NAMES,
        seed=st.integers(min_value=0, max_value=2**16),
        num_periods=st.integers(min_value=1, max_value=5),
        period_length=st.integers(min_value=5, max_value=60),
    )
    @settings(max_examples=40, deadline=None)
    def test_regime_switching_stream_identical(
        self, name, seed, num_periods, period_length
    ):
        model = ConnectionCostModel()
        schedule = uniform_theta_regimes(
            num_periods, period_length, seed=seed
        ).generate()
        kinds = _session_kinds_for_schedule(name, schedule)
        result = engine_run(name, schedule, model, stream=False)
        assert result.event_kinds == kinds
        assert result.total_cost == total_from_counts(
            _session_counts(kinds), model
        )


class TestSessionMatchesFaultyWire:
    """Byte-identity survives the lossy transport (logical book)."""

    @given(
        name=st.sampled_from(["sw3", "sw1", "t1_2", "t2_2", "st2"]),
        text=short_texts,
        drop=st.sampled_from([0.0, 0.05, 0.2]),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(
        max_examples=25, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_chaos_run_decisions_identical(self, name, text, drop, seed):
        kinds = _session_kinds(name, text)
        result = engine_run(
            name,
            Schedule.from_string(text),
            ConnectionCostModel(),
            backend="protocol",
            stream=False,
            faults=FaultConfig(drop=drop, seed=seed),
        )
        assert result.event_kinds == kinds
        assert result.total_cost == total_from_counts(
            _session_counts(kinds), ConnectionCostModel()
        )
