"""Integration tests for the multi-item catalog protocol runner."""

from __future__ import annotations

import pytest

from repro.core import make_algorithm, replay
from repro.costmodels import ConnectionCostModel, MessageCostModel
from repro.exceptions import InvalidParameterError
from repro.sim import simulate_catalog_protocol
from repro.types import Operation, Request, Schedule
from repro.workload import CatalogWorkload, ItemRates

MODEL = ConnectionCostModel()


def catalog_schedule(seed: int, length: int) -> Schedule:
    workload = CatalogWorkload(
        {
            "quotes": ItemRates(read_rate=2.0, write_rate=8.0),
            "weather": ItemRates(read_rate=8.0, write_rate=2.0),
            "traffic": ItemRates(read_rate=5.0, write_rate=5.0),
        },
        seed=seed,
    )
    return workload.generate(length)


ASSIGNMENT = {"quotes": "sw5", "weather": "st2", "traffic": "sw1"}


class TestCatalogMatchesPerItemReplay:
    def test_event_kinds_per_item(self):
        schedule = catalog_schedule(seed=1, length=900)
        run = simulate_catalog_protocol(ASSIGNMENT, schedule)
        assert len(run.event_kinds) == len(schedule)
        # Split the simulated event kinds by item and compare with the
        # abstract replay of each item's subsequence.
        for item, algorithm_name in ASSIGNMENT.items():
            indices = [
                i for i, r in enumerate(schedule) if r.objects == (item,)
            ]
            subsequence = Schedule(schedule[i] for i in indices)
            expected = replay(
                make_algorithm(algorithm_name), subsequence, MODEL
            )
            simulated = [run.event_kinds[i] for i in indices]
            assert simulated == [e.kind for e in expected.events], item

    def test_total_cost_in_both_models(self):
        schedule = catalog_schedule(seed=2, length=600)
        run = simulate_catalog_protocol(ASSIGNMENT, schedule)
        for model in (ConnectionCostModel(), MessageCostModel(0.3)):
            expected = 0.0
            for item, algorithm_name in ASSIGNMENT.items():
                subsequence = Schedule(
                    r for r in schedule if r.objects == (item,)
                )
                expected += replay(
                    make_algorithm(algorithm_name), subsequence, model
                ).total_cost
            assert run.total_cost(model) == pytest.approx(expected)

    def test_mixed_thresholds_and_statics(self):
        assignment = {"quotes": "t2_3", "weather": "t1_4", "traffic": "st1"}
        schedule = catalog_schedule(seed=3, length=600)
        run = simulate_catalog_protocol(assignment, schedule)
        for item, algorithm_name in assignment.items():
            subsequence = Schedule(r for r in schedule if r.objects == (item,))
            expected = replay(make_algorithm(algorithm_name), subsequence, MODEL)
            indices = [i for i, r in enumerate(schedule) if r.objects == (item,)]
            assert [run.event_kinds[i] for i in indices] == [
                e.kind for e in expected.events
            ]


class TestConsistencyAndAccounting:
    def test_reads_fresh_per_item(self):
        schedule = catalog_schedule(seed=4, length=500)
        run = simulate_catalog_protocol(ASSIGNMENT, schedule)
        run.verify_consistency(schedule)  # raises on staleness

    def test_final_versions_count_writes(self):
        schedule = catalog_schedule(seed=5, length=400)
        run = simulate_catalog_protocol(ASSIGNMENT, schedule)
        for item in ASSIGNMENT:
            writes = sum(
                1 for r in schedule if r.objects == (item,) and r.is_write
            )
            assert run.final_versions[item] == writes

    def test_ledger_attributes_all_requests(self):
        schedule = catalog_schedule(seed=6, length=300)
        run = simulate_catalog_protocol(ASSIGNMENT, schedule)
        assert run.ledger.request_count() == len(schedule)


class TestValidation:
    def test_rejects_empty_catalog(self):
        with pytest.raises(InvalidParameterError):
            simulate_catalog_protocol({}, Schedule())

    def test_rejects_unknown_item(self):
        schedule = Schedule([Request(Operation.READ, objects=("mystery",))])
        with pytest.raises(InvalidParameterError):
            simulate_catalog_protocol({"quotes": "st1"}, schedule)

    def test_rejects_item_less_requests(self):
        schedule = Schedule([Request(Operation.READ)])
        with pytest.raises(InvalidParameterError):
            simulate_catalog_protocol({"quotes": "st1"}, schedule)

    def test_empty_schedule(self):
        run = simulate_catalog_protocol({"quotes": "sw3"}, Schedule())
        assert run.event_kinds == ()
