"""Chaos suite: the reliable transport leaves logical costs untouched.

The acceptance bar of the resilient-transport layer: for every
algorithm family, a seeded chaos run (drop + duplicate + reorder +
delay jitter + a disconnection episode) must complete without deadlock
and its *logical* ledger must be byte-identical to the fault-free run,
with all transport repair reported in the separate overhead book.
Hypothesis drives the schedules and fault seeds; a wall-clock alarm
guards every disconnection test so a deadlock regression fails fast
instead of hanging the suite.
"""

from __future__ import annotations

import signal
from contextlib import contextmanager

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.faults import FaultConfig
from repro.sim.runner import simulate_protocol
from repro.types import Schedule

#: One representative per protocol family the paper analyzes.
CHAOS_ALGORITHMS = ("st1", "st2", "sw1", "sw5", "sw9", "t1_3", "t2_3")

#: Generous ceiling for any single chaos run; a deadlock would spin the
#: retry machinery against the kernel guard far longer than this.
WALL_CLOCK_LIMIT_SECONDS = 30

#: Kernel runaway guard: orders of magnitude above a legitimate run.
MAX_KERNEL_EVENTS = 2_000_000


@contextmanager
def wall_clock_limit(seconds: int):
    """Fail the test if the block runs longer than ``seconds``."""

    def on_alarm(signum, frame):
        raise TimeoutError(
            f"chaos run exceeded the {seconds}s wall-clock guard; "
            "likely deadlock"
        )

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.alarm(seconds)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


def schedules(max_size: int = 40):
    return st.text(alphabet="rw", min_size=1, max_size=max_size).map(
        Schedule.from_string
    )


@pytest.mark.parametrize("algorithm_name", CHAOS_ALGORITHMS)
class TestLogicalCostEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(schedule=schedules(), seed=st.integers(0, 2**31 - 1))
    def test_chaos_run_matches_fault_free_ledger(
        self, algorithm_name, schedule, seed
    ):
        faults = FaultConfig(
            drop=0.15,
            duplicate=0.1,
            reorder=0.2,
            delay_jitter=0.05,
            seed=seed,
            episodes=((0.4, 1.5),),
        )
        clean = simulate_protocol(algorithm_name, schedule)
        chaos = simulate_protocol(
            algorithm_name,
            schedule,
            faults=faults,
            max_events=MAX_KERNEL_EVENTS,
        )
        # Per-request classification, logical tallies and therefore any
        # priced total are byte-identical: the transport is invisible.
        assert chaos.event_kinds == clean.event_kinds
        assert (
            chaos.ledger.total_breakdown() == clean.ledger.total_breakdown()
        )
        assert (
            chaos.ledger.logical_message_count()
            == clean.ledger.logical_message_count()
        )
        assert chaos.final_version == clean.final_version
        # Reads observed the same values despite losses and duplicates.
        assert chaos.read_observations == clean.read_observations

    @settings(max_examples=10, deadline=None)
    @given(schedule=schedules(max_size=25), seed=st.integers(0, 2**31 - 1))
    def test_overhead_never_leaks_into_the_logical_book(
        self, algorithm_name, schedule, seed
    ):
        faults = FaultConfig(drop=0.3, duplicate=0.2, seed=seed)
        clean = simulate_protocol(algorithm_name, schedule)
        chaos = simulate_protocol(
            algorithm_name,
            schedule,
            faults=faults,
            max_events=MAX_KERNEL_EVENTS,
        )
        assert chaos.ledger.total_breakdown() == clean.ledger.total_breakdown()
        overhead = chaos.overhead
        # Conservation: physical activity >= logical activity, and the
        # repair traffic is accounted where it belongs.
        assert overhead.physical_frames >= chaos.ledger.logical_message_count()
        assert overhead.frames_lost <= overhead.physical_frames
        if overhead.frames_lost == 0 and faults.duplicate == 0:
            assert overhead.retransmissions == 0


@pytest.mark.parametrize("algorithm_name", CHAOS_ALGORITHMS)
class TestDisconnectionRecovery:
    def test_mid_run_outage_completes_and_resyncs(self, algorithm_name):
        schedule = Schedule.from_string("rrwrwwrrrwwrwrrw")
        faults = FaultConfig(
            drop=0.1,
            duplicate=0.05,
            reorder=0.1,
            seed=97,
            episodes=((0.3, 5.0),),
        )
        with wall_clock_limit(WALL_CLOCK_LIMIT_SECONDS):
            result = simulate_protocol(
                algorithm_name,
                schedule,
                faults=faults,
                max_events=MAX_KERNEL_EVENTS,
            )
        assert len(result.event_kinds) == len(schedule)
        assert result.resyncs_verified == 1
        # The outage forced repair traffic.
        assert result.overhead.frames_lost > 0

    def test_repeated_outages_complete(self, algorithm_name):
        schedule = Schedule.from_string("rwrwrrwwrr" * 3)
        faults = FaultConfig(
            seed=3,
            episodes=((0.2, 2.0), (6.0, 2.0), (12.0, 1.0)),
        )
        clean = simulate_protocol(algorithm_name, schedule)
        with wall_clock_limit(WALL_CLOCK_LIMIT_SECONDS):
            result = simulate_protocol(
                algorithm_name,
                schedule,
                faults=faults,
                max_events=MAX_KERNEL_EVENTS,
            )
        assert result.event_kinds == clean.event_kinds
        assert result.resyncs_verified == 3

    def test_outage_only_run_is_logically_free(self, algorithm_name):
        """An outage with no random faults costs zero retransmissions
        only if no exchange was in flight; either way the logical book
        is pinned."""
        schedule = Schedule.from_string("rrwrw")
        clean = simulate_protocol(algorithm_name, schedule)
        faults = FaultConfig(seed=0, episodes=((0.15, 3.0),))
        with wall_clock_limit(WALL_CLOCK_LIMIT_SECONDS):
            result = simulate_protocol(
                algorithm_name,
                schedule,
                faults=faults,
                max_events=MAX_KERNEL_EVENTS,
            )
        assert result.event_kinds == clean.event_kinds
        assert (
            result.ledger.total_breakdown() == clean.ledger.total_breakdown()
        )
