"""Fault injection for the protocol simulator.

Two regimes, both exercised through the public :mod:`repro.sim.faults`
API.  Without a recovery layer the simulator must *detect* channel
faults — a dropped message surfaces as a deadlock and protocol-state
corruption as ProtocolError, never as a wrong ledger.  With the
reliable transport the same faults must be *survived*: the ARQ layer
hides them and the logical ledger stays exactly as the paper priced it
(the chaos equivalence suite lives in ``test_sim_chaos.py``).
"""

from __future__ import annotations

import pytest

from repro.exceptions import (
    InvalidParameterError,
    LedgerInvariantError,
    PeerUnreachableError,
    ProtocolError,
    SimulationError,
)
from repro.sim.faults import (
    DroppingNetwork,
    FaultConfig,
    LossyNetwork,
    ReliableNetwork,
    parse_fault_spec,
)
from repro.sim.kernel import EventKernel
from repro.sim.ledger import TrafficLedger
from repro.sim.messages import DeleteRequest, ReadReply, ReadRequest, WritePropagation
from repro.sim.network import PointToPointNetwork
from repro.sim.nodes import MobileComputer, StationaryComputer
from repro.sim.policies import make_deciders
from repro.sim.runner import SerializedDispatcher, simulate_protocol
from repro.types import Operation, Schedule


def run_with_network(algorithm_name: str, text: str, network_factory):
    """Drive a schedule over a custom network; returns the dispatcher.

    ``network_factory(kernel, ledger)`` builds the link under test.
    """
    kernel = EventKernel()
    ledger = TrafficLedger()
    network = network_factory(kernel, ledger)
    deciders = make_deciders(algorithm_name)
    schedule = Schedule.from_string(text)
    dispatcher = SerializedDispatcher(kernel, ledger, list(schedule))
    mobile = MobileComputer(
        network,
        deciders.mobile,
        dispatcher.on_complete,
        initially_has_copy=deciders.initial_mobile_has_copy,
    )
    stationary = StationaryComputer(
        network,
        deciders.stationary,
        dispatcher.on_complete,
        mc_initially_subscribed=deciders.initial_mobile_has_copy,
    )

    def issue(index, request):
        if request.operation is Operation.READ:
            mobile.issue_read(index)
        else:
            stationary.issue_write(index, value=f"v{index}")

    dispatcher.bind(issue)
    return dispatcher, network


def run_with_drop(algorithm_name: str, text: str, drop_nth: int):
    return run_with_network(
        algorithm_name,
        text,
        lambda kernel, ledger: DroppingNetwork(kernel, ledger, drop_nth),
    )


class TestMessageLoss:
    def test_lost_read_request_stalls_the_run(self):
        dispatcher, network = run_with_drop("st1", "rrr", drop_nth=1)
        with pytest.raises(ProtocolError, match="never completed"):
            dispatcher.run()
        assert network.dropped == 1

    def test_lost_reply_stalls_the_run(self):
        dispatcher, network = run_with_drop("st1", "rr", drop_nth=2)
        with pytest.raises(ProtocolError, match="never completed"):
            dispatcher.run()
        assert network.dropped == 1

    def test_lost_propagation_stalls_sw_protocol(self):
        # Messages: read-request, reply, read-request, reply... the 4th
        # transmission is the second read's reply or the propagation —
        # either way the run cannot finish.
        dispatcher, network = run_with_drop("sw3", "rrw", drop_nth=4)
        with pytest.raises(ProtocolError, match="never completed"):
            dispatcher.run()
        assert network.dropped == 1

    def test_without_drops_everything_completes(self):
        dispatcher, network = run_with_drop("sw3", "rrwrw", drop_nth=10**9)
        dispatcher.run()
        assert network.dropped == 0
        assert len(dispatcher.completed) == 5

    def test_dropped_frame_lands_in_the_overhead_book(self):
        dispatcher, _network = run_with_drop("st1", "r", drop_nth=1)
        with pytest.raises(ProtocolError, match="never completed"):
            dispatcher.run()
        # The airtime was paid (logical charge) but the frame was lost.
        assert dispatcher._ledger.overhead.frames_lost == 1
        assert dispatcher._ledger.logical_message_count() == 1

    def test_lossy_network_drops_stall_too(self):
        faults = FaultConfig(drop=0.9, seed=1)
        dispatcher, _network = run_with_network(
            "st1",
            "rrrr",
            lambda kernel, ledger: LossyNetwork(kernel, ledger, faults),
        )
        with pytest.raises(ProtocolError, match="never completed"):
            dispatcher.run()


class TestReliableTransportSurvives:
    """The same faults that stall the raw link are absorbed by ARQ."""

    def test_heavy_loss_completes(self):
        faults = FaultConfig(drop=0.4, seed=11)
        result = simulate_protocol("st1", Schedule.from_string("rrr"),
                                   faults=faults)
        assert len(result.event_kinds) == 3
        assert result.overhead.retransmissions > 0

    def test_duplicates_are_suppressed_not_delivered(self):
        faults = FaultConfig(duplicate=0.8, seed=5)
        result = simulate_protocol("sw3", Schedule.from_string("rrwrw"),
                                   faults=faults)
        clean = simulate_protocol("sw3", Schedule.from_string("rrwrw"))
        assert result.event_kinds == clean.event_kinds
        assert result.overhead.duplicates_suppressed > 0

    def test_retry_budget_exhaustion_dead_letters(self):
        # A permanently disconnected MC defeats every retransmission;
        # the transport must escalate with a typed error instead of
        # retrying forever, and the abandoned frame must be recorded.
        faults = FaultConfig(episodes=((0.0, 1e9),), max_attempts=4)
        dispatcher, network = run_with_network(
            "st1",
            "r",
            lambda kernel, ledger: ReliableNetwork(kernel, ledger, faults),
        )
        with pytest.raises(PeerUnreachableError) as excinfo:
            dispatcher.run()
        assert excinfo.value.attempts == 4
        assert len(network.dead_letters) == 1
        assert network._ledger.overhead.dead_letters == 1

    def test_explicit_max_retries_overrides_fault_budget(self):
        faults = FaultConfig(episodes=((0.0, 1e9),))
        dispatcher, network = run_with_network(
            "st1",
            "r",
            lambda kernel, ledger: ReliableNetwork(
                kernel, ledger, faults, max_retries=2
            ),
        )
        with pytest.raises(PeerUnreachableError) as excinfo:
            dispatcher.run()
        assert excinfo.value.attempts == 2
        with pytest.raises(InvalidParameterError):
            ReliableNetwork(
                EventKernel(), TrafficLedger(), faults, max_retries=0
            )

    def test_logical_book_rejects_double_charges(self):
        from repro.sim.messages import ReadRequest as RR

        ledger = TrafficLedger()
        ledger.note_request(0, Operation.READ)
        message = RR(request_index=0)
        ledger.record(message)
        with pytest.raises(LedgerInvariantError, match="charged twice"):
            ledger.record(message)


class TestFaultConfig:
    def test_rates_validated(self):
        with pytest.raises(InvalidParameterError):
            FaultConfig(drop=1.0)
        with pytest.raises(InvalidParameterError):
            FaultConfig(duplicate=-0.1)
        with pytest.raises(InvalidParameterError):
            FaultConfig(delay_jitter=-1)
        with pytest.raises(InvalidParameterError):
            FaultConfig(episodes=((1.0, 0.0),))

    def test_disconnected_window(self):
        config = FaultConfig(episodes=((1.0, 2.0), (10.0, 1.0)))
        assert not config.disconnected(0.5)
        assert config.disconnected(1.0)
        assert config.disconnected(2.9)
        assert not config.disconnected(3.0)
        assert config.disconnected(10.5)

    def test_is_clean(self):
        assert FaultConfig().is_clean
        assert not FaultConfig(drop=0.1).is_clean
        assert not FaultConfig(episodes=((0.0, 1.0),)).is_clean

    def test_parse_fault_spec(self):
        config = parse_fault_spec(
            "drop=0.05,dup=0.02,reorder=0.1,delay=0.3,seed=7,"
            "disconnect=2:1,disconnect=8:0.5"
        )
        assert config.drop == 0.05
        assert config.duplicate == 0.02
        assert config.reorder == 0.1
        assert config.delay_jitter == 0.3
        assert config.seed == 7
        assert config.episodes == ((2.0, 1.0), (8.0, 0.5))

    def test_parse_fault_spec_rejects_unknown_keys(self):
        with pytest.raises(InvalidParameterError, match="unknown fault"):
            parse_fault_spec("lose=0.5")
        with pytest.raises(InvalidParameterError, match="key=value"):
            parse_fault_spec("drop")
        with pytest.raises(InvalidParameterError, match="START:DURATION"):
            parse_fault_spec("disconnect=5")

    def test_parse_empty_spec_is_clean(self):
        config = parse_fault_spec("")
        assert config.is_clean
        assert not config.has_frame_faults
        assert not config.has_node_faults
        assert parse_fault_spec("  ,, ").is_clean

    def test_overlapping_episodes_union(self):
        config = FaultConfig(episodes=((0.0, 5.0), (2.0, 5.0)))
        assert config.disconnected(4.0)
        assert config.disconnected(6.0)
        assert not config.disconnected(7.5)

    def test_disconnected_boundaries_are_half_open(self):
        config = FaultConfig(episodes=((2.0, 1.0),))
        assert not config.disconnected(1.999999)
        assert config.disconnected(2.0)
        assert not config.disconnected(3.0)

    def test_parse_node_fault_spec(self):
        config = parse_fault_spec(
            "crash=0@5,pause=1@2..4.5,partition=0+1|2@3..9,kills=2@60,seed=9"
        )
        assert config.crashes == ((0, 5.0),)
        assert config.pauses == ((1, 2.0, 4.5),)
        assert config.partitions == (((0, 1), (2,), 3.0, 9.0),)
        assert config.primary_kills == 2
        assert config.kill_horizon == 60.0
        assert config.seed == 9
        assert config.has_node_faults
        assert not config.has_frame_faults
        assert not config.is_clean

    def test_parse_node_fault_spec_rejects_malformed(self):
        with pytest.raises(InvalidParameterError):
            parse_fault_spec("crash=0")
        with pytest.raises(InvalidParameterError):
            parse_fault_spec("pause=1@5")
        with pytest.raises(InvalidParameterError):
            parse_fault_spec("partition=0+1@3..9")
        with pytest.raises(InvalidParameterError):
            parse_fault_spec("pause=1@5..2")
        with pytest.raises(InvalidParameterError):
            FaultConfig(primary_kills=1)  # needs a horizon

    def test_node_and_frame_fault_flags_are_disjoint(self):
        frame = FaultConfig(drop=0.1)
        node = FaultConfig(crashes=((0, 1.0),))
        assert frame.has_frame_faults and not frame.has_node_faults
        assert node.has_node_faults and not node.has_frame_faults


class TestInvariantChecker:
    def test_conservation_catches_missing_completion(self):
        ledger = TrafficLedger()
        ledger.note_request(0, Operation.READ)
        ledger.note_request(1, Operation.READ)
        with pytest.raises(LedgerInvariantError, match="never completed"):
            ledger.check_conservation([0])

    def test_conservation_catches_double_completion(self):
        ledger = TrafficLedger()
        ledger.note_request(0, Operation.WRITE)
        with pytest.raises(LedgerInvariantError, match="2 times"):
            ledger.check_conservation([0, 0])

    def test_conservation_catches_unregistered_completion(self):
        ledger = TrafficLedger()
        with pytest.raises(LedgerInvariantError, match="never registered"):
            ledger.check_conservation([3])

    def test_clean_run_passes_the_audit(self):
        result = simulate_protocol("sw3", Schedule.from_string("rrwrw"))
        # simulate_protocol already ran the audit; re-run it by hand.
        result.ledger.check_conservation(range(5))


class TestKernelRunawayGuard:
    def test_max_events_aborts_runaway_loops(self):
        kernel = EventKernel()

        def reschedule():
            kernel.schedule_after(1.0, reschedule)

        kernel.schedule_after(0.0, reschedule)
        with pytest.raises(SimulationError, match="max_events"):
            kernel.run(max_events=100)


class TestStateCorruption:
    def test_unsolicited_delete_request_rejected(self):
        kernel = EventKernel()
        ledger = TrafficLedger()
        network = PointToPointNetwork(kernel, ledger)
        deciders = make_deciders("st1")
        mobile = MobileComputer(
            network, deciders.mobile, lambda i: None, initially_has_copy=False
        )
        ledger.note_request(0, Operation.WRITE)
        network.send("mc", DeleteRequest(request_index=0))
        with pytest.raises(ProtocolError):
            kernel.run()

    def test_unsolicited_propagation_rejected(self):
        kernel = EventKernel()
        ledger = TrafficLedger()
        network = PointToPointNetwork(kernel, ledger)
        deciders = make_deciders("st1")
        mobile = MobileComputer(
            network, deciders.mobile, lambda i: None, initially_has_copy=False
        )
        ledger.note_request(0, Operation.WRITE)
        network.send("mc", WritePropagation(request_index=0, value="v", version=1))
        with pytest.raises(ProtocolError):
            kernel.run()

    def test_remote_read_while_subscribed_rejected(self):
        kernel = EventKernel()
        ledger = TrafficLedger()
        network = PointToPointNetwork(kernel, ledger)
        deciders = make_deciders("st2")
        stationary = StationaryComputer(
            network,
            deciders.stationary,
            lambda i: None,
            mc_initially_subscribed=True,
        )
        network.attach("mc", lambda m: None)
        ledger.note_request(0, Operation.READ)
        network.send("sc", ReadRequest(request_index=0))
        with pytest.raises(ProtocolError):
            kernel.run()

    def test_double_allocation_rejected(self):
        kernel = EventKernel()
        ledger = TrafficLedger()
        network = PointToPointNetwork(kernel, ledger)
        deciders = make_deciders("st2")
        mobile = MobileComputer(
            network, deciders.mobile, lambda i: None, initially_has_copy=True
        )
        ledger.note_request(0, Operation.READ)
        network.send(
            "mc",
            ReadReply(request_index=0, in_reply_to=1, value="v", version=1,
                      allocate=True),
        )
        with pytest.raises(ProtocolError):
            kernel.run()

    def test_runner_reports_deadlock(self):
        """The high-level runner converts a stall into ProtocolError."""
        original = PointToPointNetwork._transmit
        counter = {"n": 0}

        def lossy_transmit(self, destination, message):
            counter["n"] += 1
            if counter["n"] == 2:
                return  # charged by send(), never delivered
            original(self, destination, message)

        PointToPointNetwork._transmit = lossy_transmit
        try:
            with pytest.raises(ProtocolError, match="never completed"):
                simulate_protocol("st1", Schedule.from_string("rr"))
        finally:
            PointToPointNetwork._transmit = original
