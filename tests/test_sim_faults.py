"""Fault injection for the protocol simulator.

The paper assumes a reliable, serialized channel (availability is
handled inside the stationary system, section 8.1).  The simulator
must therefore *detect* — not silently mis-account — violations of
those assumptions: dropped messages must surface as deadlocks, and
protocol-state corruption as ProtocolError, never as a wrong ledger.
"""

from __future__ import annotations

import pytest

from repro.exceptions import ProtocolError
from repro.sim.kernel import EventKernel
from repro.sim.ledger import TrafficLedger
from repro.sim.messages import DeleteRequest, ReadReply, ReadRequest, WritePropagation
from repro.sim.network import PointToPointNetwork
from repro.sim.nodes import MobileComputer, StationaryComputer
from repro.sim.policies import make_deciders
from repro.types import Operation, Schedule


class DroppingNetwork(PointToPointNetwork):
    """Drops the n-th transmission (after charging it, like a real
    lossy link: the sender still paid for the airtime)."""

    def __init__(self, kernel, ledger, drop_nth: int, latency: float = 0.0):
        super().__init__(kernel, ledger, latency)
        self._remaining = drop_nth
        self.dropped = 0

    def send(self, destination, message):
        self._remaining -= 1
        if self._remaining == 0:
            # Charge but never deliver.
            self._ledger.record(message)
            self.dropped += 1
            return
        super().send(destination, message)


def run_with_drop(algorithm_name: str, text: str, drop_nth: int):
    kernel = EventKernel()
    ledger = TrafficLedger()
    network = DroppingNetwork(kernel, ledger, drop_nth)
    deciders = make_deciders(algorithm_name)
    completed = []

    schedule = Schedule.from_string(text)
    requests = list(schedule)
    next_index = [0]

    def on_complete(index):
        completed.append(index)
        dispatch()

    mobile = MobileComputer(
        network,
        deciders.mobile,
        on_complete,
        initially_has_copy=deciders.initial_mobile_has_copy,
    )
    stationary = StationaryComputer(
        network,
        deciders.stationary,
        on_complete,
        mc_initially_subscribed=deciders.initial_mobile_has_copy,
    )

    def dispatch():
        index = next_index[0]
        if index >= len(requests):
            return
        next_index[0] += 1
        request = requests[index]

        def fire():
            ledger.note_request(index, request.operation)
            if request.operation is Operation.READ:
                mobile.issue_read(index)
            else:
                stationary.issue_write(index, value=f"v{index}")

        kernel.schedule_at(kernel.now, fire)

    dispatch()
    kernel.run()
    return completed, network, len(requests)


class TestMessageLoss:
    def test_lost_read_request_stalls_the_run(self):
        completed, network, total = run_with_drop("st1", "rrr", drop_nth=1)
        assert network.dropped == 1
        # The first read's request vanished: nothing completes after it.
        assert len(completed) < total

    def test_lost_reply_stalls_the_run(self):
        completed, network, total = run_with_drop("st1", "rr", drop_nth=2)
        assert network.dropped == 1
        assert len(completed) < total

    def test_lost_propagation_stalls_sw_protocol(self):
        completed, network, total = run_with_drop("sw3", "rrw", drop_nth=4)
        # Messages: read-request, reply, read-request, reply... the 4th
        # transmission is the second read's reply or the propagation —
        # either way the run cannot finish.
        assert network.dropped == 1
        assert len(completed) < total

    def test_without_drops_everything_completes(self):
        completed, network, total = run_with_drop("sw3", "rrwrw", drop_nth=10**9)
        assert network.dropped == 0
        assert len(completed) == total


class TestStateCorruption:
    def test_unsolicited_delete_request_rejected(self):
        kernel = EventKernel()
        ledger = TrafficLedger()
        network = PointToPointNetwork(kernel, ledger)
        deciders = make_deciders("st1")
        mobile = MobileComputer(
            network, deciders.mobile, lambda i: None, initially_has_copy=False
        )
        ledger.note_request(0, Operation.WRITE)
        network.send("mc", DeleteRequest(request_index=0))
        with pytest.raises(ProtocolError):
            kernel.run()

    def test_unsolicited_propagation_rejected(self):
        kernel = EventKernel()
        ledger = TrafficLedger()
        network = PointToPointNetwork(kernel, ledger)
        deciders = make_deciders("st1")
        mobile = MobileComputer(
            network, deciders.mobile, lambda i: None, initially_has_copy=False
        )
        ledger.note_request(0, Operation.WRITE)
        network.send("mc", WritePropagation(request_index=0, value="v", version=1))
        with pytest.raises(ProtocolError):
            kernel.run()

    def test_remote_read_while_subscribed_rejected(self):
        kernel = EventKernel()
        ledger = TrafficLedger()
        network = PointToPointNetwork(kernel, ledger)
        deciders = make_deciders("st2")
        stationary = StationaryComputer(
            network,
            deciders.stationary,
            lambda i: None,
            mc_initially_subscribed=True,
        )
        network.attach("mc", lambda m: None)
        ledger.note_request(0, Operation.READ)
        network.send("sc", ReadRequest(request_index=0))
        with pytest.raises(ProtocolError):
            kernel.run()

    def test_double_allocation_rejected(self):
        kernel = EventKernel()
        ledger = TrafficLedger()
        network = PointToPointNetwork(kernel, ledger)
        deciders = make_deciders("st2")
        mobile = MobileComputer(
            network, deciders.mobile, lambda i: None, initially_has_copy=True
        )
        ledger.note_request(0, Operation.READ)
        network.send(
            "mc",
            ReadReply(request_index=0, in_reply_to=1, value="v", version=1,
                      allocate=True),
        )
        with pytest.raises(ProtocolError):
            kernel.run()

    def test_runner_reports_deadlock(self):
        """The high-level runner converts a stall into ProtocolError."""
        import repro.sim.runner as runner_module
        from repro.sim.runner import simulate_protocol

        original = PointToPointNetwork.send
        counter = {"n": 0}

        def lossy_send(self, destination, message):
            counter["n"] += 1
            if counter["n"] == 2:
                self._ledger.record(message)
                return
            original(self, destination, message)

        PointToPointNetwork.send = lossy_send
        try:
            with pytest.raises(ProtocolError, match="never completed"):
                simulate_protocol("st1", Schedule.from_string("rr"))
        finally:
            PointToPointNetwork.send = original
