"""Unit tests for the discrete-event kernel, network and ledger."""

from __future__ import annotations

import pytest

from repro.costmodels import ConnectionCostModel, CostEventKind
from repro.exceptions import ProtocolError, SimulationError
from repro.sim.kernel import EventKernel
from repro.sim.ledger import TrafficLedger
from repro.sim.messages import (
    DeleteRequest,
    ReadReply,
    ReadRequest,
    WritePropagation,
)
from repro.sim.network import PointToPointNetwork
from repro.types import Operation


class TestEventKernel:
    def test_events_fire_in_time_order(self):
        kernel = EventKernel()
        fired = []
        kernel.schedule_at(2.0, lambda: fired.append("b"))
        kernel.schedule_at(1.0, lambda: fired.append("a"))
        kernel.schedule_at(3.0, lambda: fired.append("c"))
        kernel.run()
        assert fired == ["a", "b", "c"]

    def test_simultaneous_events_fire_in_schedule_order(self):
        kernel = EventKernel()
        fired = []
        kernel.schedule_at(1.0, lambda: fired.append(1))
        kernel.schedule_at(1.0, lambda: fired.append(2))
        kernel.run()
        assert fired == [1, 2]

    def test_clock_advances(self):
        kernel = EventKernel()
        kernel.schedule_at(5.0, lambda: None)
        assert kernel.run() == 5.0
        assert kernel.now == 5.0

    def test_schedule_after(self):
        kernel = EventKernel()
        times = []
        kernel.schedule_at(1.0, lambda: kernel.schedule_after(2.0, lambda: times.append(kernel.now)))
        kernel.run()
        assert times == [3.0]

    def test_run_until_stops_early(self):
        kernel = EventKernel()
        fired = []
        kernel.schedule_at(1.0, lambda: fired.append(1))
        kernel.schedule_at(10.0, lambda: fired.append(2))
        kernel.run(until=5.0)
        assert fired == [1]
        assert kernel.now == 5.0
        assert kernel.pending_events == 1

    def test_rejects_past_events(self):
        kernel = EventKernel()
        kernel.schedule_at(2.0, lambda: None)
        kernel.run()
        with pytest.raises(SimulationError):
            kernel.schedule_at(1.0, lambda: None)

    def test_rejects_negative_delay(self):
        with pytest.raises(SimulationError):
            EventKernel().schedule_after(-1.0, lambda: None)

    def test_events_scheduled_during_run(self):
        kernel = EventKernel()
        fired = []

        def chain():
            fired.append(kernel.now)
            if len(fired) < 3:
                kernel.schedule_after(1.0, chain)

        kernel.schedule_at(0.0, chain)
        kernel.run()
        assert fired == [0.0, 1.0, 2.0]


class TestNetwork:
    def _setup(self, latency=0.5):
        kernel = EventKernel()
        ledger = TrafficLedger()
        network = PointToPointNetwork(kernel, ledger, latency=latency)
        return kernel, ledger, network

    def test_delivers_after_latency(self):
        kernel, ledger, network = self._setup(latency=0.5)
        received = []
        network.attach("mc", received.append)
        ledger.note_request(0, Operation.READ)
        network.send("mc", ReadReply(request_index=0, in_reply_to=1))
        kernel.run()
        assert len(received) == 1
        assert kernel.now == 0.5

    def test_rejects_unknown_endpoint(self):
        _kernel, ledger, network = self._setup()
        ledger.note_request(0, Operation.READ)
        with pytest.raises(SimulationError):
            network.send("satellite", ReadRequest(request_index=0))

    def test_rejects_double_attach(self):
        _kernel, _ledger, network = self._setup()
        network.attach("mc", lambda m: None)
        with pytest.raises(SimulationError):
            network.attach("mc", lambda m: None)

    def test_rejects_negative_latency(self):
        kernel = EventKernel()
        with pytest.raises(SimulationError):
            PointToPointNetwork(kernel, TrafficLedger(), latency=-1.0)


class TestLedgerClassification:
    def test_remote_read(self):
        ledger = TrafficLedger()
        ledger.note_request(0, Operation.READ)
        request = ReadRequest(request_index=0)
        ledger.record(request)
        ledger.record(ReadReply(request_index=0, in_reply_to=request.message_id))
        assert ledger.classify(0) is CostEventKind.REMOTE_READ
        breakdown = ledger.breakdown(0)
        assert (breakdown.connections, breakdown.data_messages,
                breakdown.control_messages) == (1, 1, 1)

    def test_local_read(self):
        ledger = TrafficLedger()
        ledger.note_request(0, Operation.READ)
        assert ledger.classify(0) is CostEventKind.LOCAL_READ

    def test_write_propagated(self):
        ledger = TrafficLedger()
        ledger.note_request(0, Operation.WRITE)
        ledger.record(WritePropagation(request_index=0))
        assert ledger.classify(0) is CostEventKind.WRITE_PROPAGATED

    def test_delete_request(self):
        ledger = TrafficLedger()
        ledger.note_request(0, Operation.WRITE)
        ledger.record(DeleteRequest(request_index=0))
        assert ledger.classify(0) is CostEventKind.WRITE_DELETE_REQUEST

    def test_unregistered_request_rejected(self):
        ledger = TrafficLedger()
        with pytest.raises(ProtocolError):
            ledger.record(ReadRequest(request_index=7))

    def test_double_registration_rejected(self):
        ledger = TrafficLedger()
        ledger.note_request(0, Operation.READ)
        with pytest.raises(ProtocolError):
            ledger.note_request(0, Operation.READ)

    def test_unclassifiable_traffic_rejected(self):
        ledger = TrafficLedger()
        ledger.note_request(0, Operation.READ)
        # A read producing two data messages matches no protocol shape.
        ledger.record(ReadReply(request_index=0, in_reply_to=1))
        ledger.record(ReadReply(request_index=0, in_reply_to=2))
        with pytest.raises(ProtocolError):
            ledger.classify(0)

    def test_priced_total(self, connection_model):
        ledger = TrafficLedger()
        ledger.note_request(0, Operation.READ)
        request = ReadRequest(request_index=0)
        ledger.record(request)
        ledger.record(ReadReply(request_index=0, in_reply_to=request.message_id))
        ledger.note_request(1, Operation.WRITE)
        assert ledger.priced_total(connection_model) == 1.0

    def test_total_breakdown(self):
        ledger = TrafficLedger()
        ledger.note_request(0, Operation.WRITE)
        ledger.record(WritePropagation(request_index=0))
        ledger.note_request(1, Operation.WRITE)
        ledger.record(DeleteRequest(request_index=1))
        total = ledger.total_breakdown()
        assert (total.connections, total.data_messages,
                total.control_messages) == (2, 1, 1)
