"""Integration tests: the distributed protocol vs the abstract model.

The central reproduction claim for the simulator: running the actual
two-node protocol (ownership handoff, piggybacked windows, propagation
and delete-requests over a latency-laden link) produces the *identical*
per-request cost-event classification as the abstract algorithm replay,
and keeps the replica consistent.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import make_algorithm, replay
from repro.costmodels import ConnectionCostModel, MessageCostModel
from repro.exceptions import ProtocolError
from repro.sim import simulate_protocol
from repro.sim.policies import make_deciders
from repro.types import Schedule
from repro.workload import bernoulli_schedule, swk_tight_schedule


class TestProtocolMatchesAbstractModel:
    @pytest.mark.parametrize("theta", [0.2, 0.5, 0.8])
    def test_event_kinds_identical(self, algorithm_name, theta):
        rng = np.random.default_rng(hash((algorithm_name, theta)) % 2**32)
        schedule = bernoulli_schedule(theta, 400, rng=rng)
        protocol = simulate_protocol(algorithm_name, schedule)
        abstract = replay(
            make_algorithm(algorithm_name), schedule, ConnectionCostModel()
        )
        assert protocol.event_kinds == tuple(e.kind for e in abstract.events)

    def test_costs_identical_in_both_models(self, algorithm_name):
        schedule = bernoulli_schedule(
            0.5, 500, rng=np.random.default_rng(7)
        )
        protocol = simulate_protocol(algorithm_name, schedule)
        for model in (ConnectionCostModel(), MessageCostModel(0.35)):
            abstract = replay(make_algorithm(algorithm_name), schedule, model)
            assert protocol.total_cost(model) == pytest.approx(
                abstract.total_cost
            )

    def test_tight_adversary_through_protocol(self):
        """The worst-case family drives the full protocol too."""
        schedule = swk_tight_schedule(5, 50)
        protocol = simulate_protocol("sw5", schedule)
        abstract = replay(make_algorithm("sw5"), schedule, ConnectionCostModel())
        assert protocol.total_cost(ConnectionCostModel()) == abstract.total_cost


class TestReplicaConsistency:
    def test_reads_observe_latest_version(self, algorithm_name):
        schedule = bernoulli_schedule(0.5, 300, rng=np.random.default_rng(3))
        result = simulate_protocol(algorithm_name, schedule)
        # verify_consistency ran inside simulate_protocol; re-run
        # explicitly for the assertion surface.
        result.verify_consistency(schedule)

    def test_final_version_counts_writes(self):
        schedule = Schedule.from_string("wwrww")
        result = simulate_protocol("st1", schedule)
        assert result.final_version == 4

    def test_every_read_observed(self):
        schedule = Schedule.from_string("rrwrr")
        result = simulate_protocol("st2", schedule)
        assert len(result.read_observations) == 4


class TestTimingAndSerialization:
    def test_honours_arrival_timestamps(self):
        schedule = Schedule.from_string("rr").with_timestamps([1.0, 10.0])
        result = simulate_protocol("st1", schedule, latency=0.1)
        # Second read dispatched at its arrival, exchange adds 2 hops.
        assert result.final_time == pytest.approx(10.2)

    def test_serializes_bursty_arrivals(self):
        # Both requests arrive at t=0; the second must wait for the
        # first exchange (0.2) to finish.
        schedule = Schedule.from_string("rr").with_timestamps([0.0, 0.0])
        result = simulate_protocol("st1", schedule, latency=0.1)
        assert result.final_time == pytest.approx(0.4)

    def test_zero_latency_supported(self):
        schedule = Schedule.from_string("rwrw")
        result = simulate_protocol("sw3", schedule, latency=0.0)
        assert result.final_time == 0.0

    def test_empty_schedule(self):
        result = simulate_protocol("sw3", Schedule())
        assert result.event_kinds == ()
        assert result.final_time == 0.0


class TestDeciderFactory:
    def test_unknown_algorithm_rejected(self):
        from repro.exceptions import UnknownAlgorithmError

        with pytest.raises(UnknownAlgorithmError):
            make_deciders("gossip-9000")

    def test_initial_copy_placement(self):
        assert make_deciders("st2").initial_mobile_has_copy
        assert make_deciders("t2_3").initial_mobile_has_copy
        assert not make_deciders("st1").initial_mobile_has_copy
        assert not make_deciders("sw9").initial_mobile_has_copy

    def test_st1_stationary_rejects_subscribed_write(self):
        deciders = make_deciders("st1")
        with pytest.raises(ProtocolError):
            deciders.stationary.on_write(mc_subscribed=True)

    def test_st2_stationary_rejects_remote_read(self):
        deciders = make_deciders("st2")
        with pytest.raises(ProtocolError):
            deciders.stationary.on_read_request()

    def test_swk_window_handoff_guard(self):
        deciders = make_deciders("sw3")
        # SC holds the window initially; adopting another is an error.
        with pytest.raises(ProtocolError):
            deciders.stationary.adopt_window(
                tuple(Schedule.from_string("rrr").operations())
            )

    def test_swk_mobile_needs_window(self):
        deciders = make_deciders("sw3")
        with pytest.raises(ProtocolError):
            deciders.mobile.on_propagation()
