"""Replicated SC with failover: the byte-identity contract under chaos.

The replica set exists to make the stationary computer's availability
real without changing a single logical ledger entry: after any fault
campaign that leaves a quorum alive, the logical traffic book, the
event-kind stream, the read observations and the final version must be
byte-identical to the fault-free single-SC run.  Every failover frame
— replication, heartbeats, elections, catch-up snapshots, client
retries, breaker probes — lands in the overhead book instead.  These
tests drive seeded crash/pause/partition/kill campaigns through the
public :func:`repro.sim.runner.simulate_protocol` entry point and
compare fingerprints, plus unit coverage of the circuit breaker and
the configuration validators, and a hypothesis property that elections
are deterministic functions of the seed.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exceptions import (
    InvalidParameterError,
    PeerUnreachableError,
)
from repro.sim import CircuitBreaker, ReplicaConfig
from repro.sim.faults import FaultConfig
from repro.sim.runner import simulate_protocol
from repro.workload import bernoulli_schedule

ALGORITHMS = ["st1", "st2", "sw1", "sw5", "t1_3", "t2_3"]

SCHEDULE = bernoulli_schedule(0.6, 200, 7)


def fingerprint(result):
    """Everything the byte-identity contract covers, as one tuple."""
    return (
        result.event_kinds,
        result.ledger.total_breakdown(),
        result.ledger.logical_message_count(),
        result.read_observations,
        result.final_version,
    )


_BASELINES = {}


def baseline(algorithm: str):
    """The fault-free single-SC fingerprint, computed once per algorithm."""
    if algorithm not in _BASELINES:
        _BASELINES[algorithm] = fingerprint(
            simulate_protocol(algorithm, SCHEDULE)
        )
    return _BASELINES[algorithm]


class TestReplicaConfig:
    def test_defaults_are_valid(self):
        config = ReplicaConfig()
        assert config.num_replicas == 3
        assert config.quorum == 2
        config.validate_for(0.05)

    def test_quorum_is_a_majority(self):
        assert ReplicaConfig(num_replicas=2).quorum == 2
        assert ReplicaConfig(num_replicas=4).quorum == 3
        assert ReplicaConfig(num_replicas=5).quorum == 3

    def test_replica_count_bounds(self):
        with pytest.raises(InvalidParameterError):
            ReplicaConfig(num_replicas=1)
        with pytest.raises(InvalidParameterError):
            ReplicaConfig(num_replicas=6)

    def test_detection_needs_two_heartbeats(self):
        with pytest.raises(InvalidParameterError, match="heartbeat"):
            ReplicaConfig(heartbeat_interval=1.0, failure_timeout=1.5)

    def test_validate_for_rejects_slow_links(self):
        # A wireless round trip longer than the failure timeout would
        # let a new primary re-serve a request whose reply is still in
        # flight from the old one.
        with pytest.raises(InvalidParameterError, match="round trip"):
            ReplicaConfig().validate_for(1.0)
        # A retry period shorter than a full exchange would retry
        # requests that are merely in progress.
        with pytest.raises(InvalidParameterError, match="retry_interval"):
            ReplicaConfig(
                failure_timeout=5.0, retry_interval=2.0
            ).validate_for(0.99)


class TestCircuitBreaker:
    def test_opens_at_threshold_and_fires_once(self):
        openings = []
        breaker = CircuitBreaker(3, on_open=lambda: openings.append(1))
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.is_closed and not openings
        breaker.record_failure()
        assert breaker.is_open
        assert breaker.times_opened == 1
        assert openings == [1]
        # Further failures while already open do not re-fire the hook.
        breaker.record_failure()
        assert openings == [1]

    def test_half_open_failure_reopens(self):
        openings = []
        breaker = CircuitBreaker(2, on_open=lambda: openings.append(1))
        breaker.record_failure()
        breaker.record_failure()
        breaker.probe_ok()
        assert breaker.state == CircuitBreaker.HALF_OPEN
        breaker.record_failure()
        assert breaker.is_open
        assert breaker.times_opened == 2
        assert openings == [1, 1]

    def test_success_closes_and_resets(self):
        breaker = CircuitBreaker(2)
        breaker.record_failure()
        breaker.record_failure()
        breaker.probe_ok()
        breaker.record_success()
        assert breaker.is_closed
        assert breaker.failures == 0

    def test_probe_only_moves_an_open_breaker(self):
        breaker = CircuitBreaker(2)
        breaker.probe_ok()
        assert breaker.is_closed
        with pytest.raises(InvalidParameterError):
            CircuitBreaker(0)


class TestCleanReplicatedEquivalence:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_replicated_equals_single_sc(self, algorithm):
        result = simulate_protocol(algorithm, SCHEDULE, replicas=3)
        assert fingerprint(result) == baseline(algorithm)
        assert result.replicas == 3
        assert result.failovers == 0
        assert result.final_primary == 0

    def test_replica_count_must_agree_with_config(self):
        with pytest.raises(InvalidParameterError, match="disagrees"):
            simulate_protocol(
                "sw3",
                SCHEDULE,
                replicas=3,
                replica_config=ReplicaConfig(num_replicas=5),
            )

    def test_node_faults_need_a_replica_set(self):
        with pytest.raises(InvalidParameterError):
            simulate_protocol(
                "sw3", SCHEDULE, faults=FaultConfig(crashes=((0, 1.0),))
            )

    def test_frame_faults_reject_a_replica_set(self):
        with pytest.raises(InvalidParameterError, match="frame-level"):
            simulate_protocol(
                "sw3", SCHEDULE, replicas=3, faults=FaultConfig(drop=0.1)
            )


class TestFailoverCampaigns:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_primary_crash_is_invisible_in_the_ledger(self, algorithm):
        result = simulate_protocol(
            algorithm,
            SCHEDULE,
            replicas=3,
            faults=FaultConfig(crashes=((0, 5.0),), seed=3),
        )
        assert fingerprint(result) == baseline(algorithm)
        assert result.failovers == 1
        assert result.final_primary != 0
        assert result.overhead.failovers == 1
        assert result.overhead.elections >= 1
        # The failover traffic is real and all of it is overhead.
        assert result.overhead.heartbeat_frames > 0
        assert result.overhead.replication_frames > 0
        assert len(result.failover_latencies) == 1
        assert result.failover_latencies[0] > 0

    def test_minority_partition_of_the_primary(self):
        result = simulate_protocol(
            "sw3",
            SCHEDULE,
            replicas=3,
            faults=FaultConfig(
                partitions=(((0,), (1, 2), 3.0, 9.0),), seed=5
            ),
        )
        assert fingerprint(result) == baseline("sw3")
        assert result.failovers >= 1

    def test_paused_primary_resumes_as_backup(self):
        result = simulate_protocol(
            "sw3",
            SCHEDULE,
            replicas=3,
            faults=FaultConfig(pauses=((0, 3.0, 8.0),), seed=5),
        )
        assert fingerprint(result) == baseline("sw3")
        assert result.failovers == 1
        # The resumed ex-primary is caught up via a verified resync.
        assert result.resyncs_verified > 0

    def test_seeded_kill_campaign_with_five_replicas(self):
        faults = FaultConfig(primary_kills=2, kill_horizon=10.0, seed=11)
        result = simulate_protocol(
            "sw3", SCHEDULE, replicas=5, faults=faults
        )
        assert fingerprint(result) == baseline("sw3")
        assert result.failovers + result.kills_skipped == 2

    def test_double_failover_releases_committed_tail_on_retry(self):
        # Regression: with two kills in quick succession (hypothesis
        # found seed 595), the first successor committed the in-doubt
        # tail via its promotion snapshot and died before any client
        # retry released the captured effects.  The second successor
        # used to mark every committed record as already-served and
        # suppress the retries as duplicates until the client's retry
        # budget blew up; it must re-release instead (the MC replay
        # path makes that idempotent).
        faults = FaultConfig(primary_kills=2, kill_horizon=8.0, seed=595)
        result = simulate_protocol("sw3", SCHEDULE, replicas=5, faults=faults)
        assert fingerprint(result) == baseline("sw3")
        assert result.failovers == 2

    def test_quorum_loss_surfaces_as_peer_unreachable(self):
        config = ReplicaConfig(max_retries=3)
        with pytest.raises(PeerUnreachableError) as excinfo:
            simulate_protocol(
                "sw3",
                SCHEDULE,
                replicas=3,
                replica_config=config,
                faults=FaultConfig(
                    crashes=((0, 2.0), (1, 2.5)), seed=1
                ),
            )
        assert excinfo.value.destination == "sc"
        assert excinfo.value.attempts == 3


class TestElectionDeterminism:
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(min_value=0, max_value=2**16), kills=st.integers(min_value=1, max_value=2))
    def test_seeded_kill_orders_elect_deterministically(self, seed, kills):
        faults = FaultConfig(
            primary_kills=kills, kill_horizon=8.0, seed=seed
        )
        first = simulate_protocol("sw3", SCHEDULE, replicas=5, faults=faults)
        second = simulate_protocol("sw3", SCHEDULE, replicas=5, faults=faults)
        # Same seed, same kill times, same winners, same overhead.
        assert first.election_history == second.election_history
        assert first.failover_latencies == second.failover_latencies
        assert first.overhead.as_dict() == second.overhead.as_dict()
        # And the logical ledger never notices any of it.
        assert fingerprint(first) == baseline("sw3")
        assert fingerprint(second) == baseline("sw3")
