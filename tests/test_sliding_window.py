"""Unit tests for the SWk family and the request window (section 4)."""

from __future__ import annotations

import pytest

from repro.core import SlidingWindow, SlidingWindowOne, replay
from repro.core.sliding_window import RequestWindow
from repro.costmodels import ConnectionCostModel, CostEventKind
from repro.exceptions import InvalidParameterError
from repro.types import READ, WRITE, AllocationScheme, Operation, Schedule


class TestRequestWindow:
    def test_all_reads_majority(self):
        window = RequestWindow.all_reads(5)
        assert window.read_count == 5
        assert window.write_count == 0
        assert window.majority_reads

    def test_all_writes_majority(self):
        window = RequestWindow.all_writes(5)
        assert window.write_count == 5
        assert not window.majority_reads

    def test_slide_evicts_oldest(self):
        window = RequestWindow(3, [WRITE, WRITE, READ])
        window.slide(READ)  # drops the oldest write
        assert window.contents() == (WRITE, READ, READ)
        assert window.majority_reads

    def test_incremental_count_matches_recount(self):
        window = RequestWindow.all_writes(7)
        pattern = [READ, READ, WRITE, READ, WRITE, WRITE, READ, READ, READ]
        for op in pattern * 3:
            window.slide(op)
            assert window.write_count == window.recount()

    def test_no_ties_with_odd_k(self):
        window = RequestWindow(3, [READ, READ, WRITE])
        assert window.read_count != window.write_count

    def test_rejects_even_window(self):
        with pytest.raises(InvalidParameterError):
            RequestWindow(4, [READ] * 4)

    def test_rejects_wrong_initial_length(self):
        with pytest.raises(InvalidParameterError):
            RequestWindow(3, [READ, WRITE])

    def test_copy_is_independent(self):
        window = RequestWindow.all_reads(3)
        clone = window.copy()
        clone.slide(WRITE)
        assert window.write_count == 0
        assert clone.write_count == 1


class TestSlidingWindowBehaviour:
    def test_default_start_is_one_copy(self):
        algorithm = SlidingWindow(5)
        assert algorithm.scheme is AllocationScheme.ONE_COPY
        assert algorithm.name == "sw5"

    def test_initial_window_sets_scheme(self):
        algorithm = SlidingWindow(3, initial_window=[READ, READ, READ])
        assert algorithm.scheme is AllocationScheme.TWO_COPIES

    def test_allocation_needs_majority_flip(self):
        # k=3 starting from all writes: the copy appears only after
        # two reads make reads the majority.
        algorithm = SlidingWindow(3)
        assert algorithm.process(READ) is CostEventKind.REMOTE_READ
        assert not algorithm.mobile_has_copy
        assert algorithm.process(READ) is CostEventKind.REMOTE_READ
        assert algorithm.mobile_has_copy  # window now r,r,w -> majority reads

    def test_reads_free_once_allocated(self):
        algorithm = SlidingWindow(3, initial_window=[READ] * 3)
        assert algorithm.process(READ) is CostEventKind.LOCAL_READ

    def test_write_propagated_while_majority_reads(self):
        algorithm = SlidingWindow(5, initial_window=[READ] * 5)
        assert algorithm.process(WRITE) is CostEventKind.WRITE_PROPAGATED
        assert algorithm.mobile_has_copy

    def test_write_deallocates_on_flip(self):
        algorithm = SlidingWindow(3, initial_window=[READ] * 3)
        assert algorithm.process(WRITE) is CostEventKind.WRITE_PROPAGATED
        kind = algorithm.process(WRITE)
        assert kind is CostEventKind.WRITE_PROPAGATED_DEALLOCATE
        assert not algorithm.mobile_has_copy

    def test_writes_free_without_copy(self):
        algorithm = SlidingWindow(3)
        assert algorithm.process(WRITE) is CostEventKind.WRITE_NO_COPY

    def test_scheme_always_equals_window_majority(self):
        """The invariant behind equation 4's pi_k analysis."""
        algorithm = SlidingWindow(7)
        pattern = Schedule.from_string("rrrwwrwrwwwrrrrrwwwwwrrr")
        for request in pattern:
            algorithm.process(request.operation)
            assert algorithm.mobile_has_copy == algorithm.window.majority_reads

    def test_reset_restores_initial_state(self):
        algorithm = SlidingWindow(3)
        for op in (READ, READ, READ):
            algorithm.process(op)
        assert algorithm.mobile_has_copy
        algorithm.reset()
        assert not algorithm.mobile_has_copy
        assert algorithm.window.write_count == 3

    def test_clone_is_fresh(self):
        algorithm = SlidingWindow(3)
        algorithm.process(READ)
        clone = algorithm.clone()
        assert clone.k == 3
        assert clone.window.write_count == 3

    def test_rejects_even_k(self):
        with pytest.raises(InvalidParameterError):
            SlidingWindow(4)


class TestSlidingWindowOne:
    def test_follows_last_request(self):
        algorithm = SlidingWindowOne()
        assert algorithm.process(READ) is CostEventKind.REMOTE_READ
        assert algorithm.mobile_has_copy
        assert algorithm.process(READ) is CostEventKind.LOCAL_READ
        assert algorithm.process(WRITE) is CostEventKind.WRITE_DELETE_REQUEST
        assert not algorithm.mobile_has_copy
        assert algorithm.process(WRITE) is CostEventKind.WRITE_NO_COPY

    def test_delete_request_instead_of_propagation(self):
        """The end-of-section-4 optimization: SW1 never propagates data."""
        algorithm = SlidingWindowOne()
        schedule = Schedule.from_string("rwrwrw")
        result = replay(algorithm, schedule, ConnectionCostModel())
        kinds = {event.kind for event in result.events}
        assert CostEventKind.WRITE_PROPAGATED not in kinds
        assert CostEventKind.WRITE_PROPAGATED_DEALLOCATE not in kinds

    def test_unoptimized_k1_propagates(self):
        algorithm = SlidingWindow(1)
        algorithm.process(READ)
        kind = algorithm.process(WRITE)
        assert kind is CostEventKind.WRITE_PROPAGATED_DEALLOCATE

    def test_connection_costs_match_swk_with_k1(self):
        """In the connection model SW1 and unoptimized k=1 cost the same."""
        schedule = Schedule.from_string("rwwrrwrwwwrrrwr")
        model = ConnectionCostModel()
        optimized = replay(SlidingWindowOne(), schedule, model)
        unoptimized = replay(SlidingWindow(1), schedule, model)
        assert optimized.total_cost == unoptimized.total_cost
