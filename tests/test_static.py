"""Unit tests for the static methods ST1 and ST2 (section 5.1)."""

from __future__ import annotations

from repro.core import StaticOneCopy, StaticTwoCopies, replay
from repro.costmodels import ConnectionCostModel, CostEventKind, MessageCostModel
from repro.types import READ, WRITE, AllocationScheme, Schedule


class TestStaticOneCopy:
    def test_never_holds_copy(self):
        algorithm = StaticOneCopy()
        for op in (READ, WRITE, READ, READ, WRITE):
            algorithm.process(op)
            assert algorithm.scheme is AllocationScheme.ONE_COPY

    def test_reads_always_remote(self):
        algorithm = StaticOneCopy()
        assert algorithm.process(READ) is CostEventKind.REMOTE_READ

    def test_writes_free(self):
        algorithm = StaticOneCopy()
        assert algorithm.process(WRITE) is CostEventKind.WRITE_NO_COPY

    def test_connection_cost_counts_reads(self):
        schedule = Schedule.from_string("rrwwrw")
        result = replay(StaticOneCopy(), schedule, ConnectionCostModel())
        assert result.total_cost == schedule.read_count

    def test_message_cost_counts_reads_with_omega(self):
        schedule = Schedule.from_string("rrwwrw")
        result = replay(StaticOneCopy(), schedule, MessageCostModel(0.5))
        assert result.total_cost == schedule.read_count * 1.5

    def test_no_allocation_changes(self):
        schedule = Schedule.from_string("rwrwrwrw")
        result = replay(StaticOneCopy(), schedule, ConnectionCostModel())
        assert result.allocation_changes() == 0


class TestStaticTwoCopies:
    def test_always_holds_copy(self):
        algorithm = StaticTwoCopies()
        for op in (WRITE, READ, WRITE, WRITE):
            algorithm.process(op)
            assert algorithm.scheme is AllocationScheme.TWO_COPIES

    def test_reads_local(self):
        algorithm = StaticTwoCopies()
        assert algorithm.process(READ) is CostEventKind.LOCAL_READ

    def test_writes_propagated(self):
        algorithm = StaticTwoCopies()
        assert algorithm.process(WRITE) is CostEventKind.WRITE_PROPAGATED

    def test_connection_cost_counts_writes(self):
        schedule = Schedule.from_string("rrwwrw")
        result = replay(StaticTwoCopies(), schedule, ConnectionCostModel())
        assert result.total_cost == schedule.write_count

    def test_message_cost_is_one_data_message_per_write(self):
        schedule = Schedule.from_string("rrwwrw")
        result = replay(StaticTwoCopies(), schedule, MessageCostModel(0.9))
        assert result.total_cost == schedule.write_count * 1.0


class TestStaticDuality:
    def test_costs_swap_under_operation_flip(self):
        """ST1 on sigma costs (in connections) what ST2 costs on the
        read/write-flipped sigma."""
        schedule = Schedule.from_string("rrwrwwrrrw")
        flipped = Schedule.from_string(
            "".join("r" if c == "w" else "w" for c in schedule.to_string())
        )
        model = ConnectionCostModel()
        assert (
            replay(StaticOneCopy(), schedule, model).total_cost
            == replay(StaticTwoCopies(), flipped, model).total_cost
        )
