"""Unit tests for the Monte-Carlo statistics helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.statistics import (
    batch_means_interval,
    mean_confidence_interval,
    required_sample_size,
)
from repro.exceptions import InvalidParameterError


class TestMeanConfidenceInterval:
    def test_contains_true_mean_usually(self):
        rng = np.random.default_rng(1)
        hits = 0
        trials = 200
        for _ in range(trials):
            samples = rng.normal(loc=0.4, scale=0.1, size=50)
            if mean_confidence_interval(samples, 0.95).contains(0.4):
                hits += 1
        # Coverage should be ~95%; allow generous slack.
        assert hits / trials > 0.88

    def test_width_shrinks_with_samples(self):
        rng = np.random.default_rng(2)
        small = mean_confidence_interval(rng.normal(size=20))
        large = mean_confidence_interval(rng.normal(size=2_000))
        assert large.half_width < small.half_width

    def test_degenerate_samples_give_zero_width(self):
        interval = mean_confidence_interval([1.0, 1.0, 1.0, 1.0])
        assert interval.mean == 1.0
        assert interval.half_width == 0.0

    def test_str(self):
        text = str(mean_confidence_interval([1.0, 2.0, 3.0]))
        assert "95%" in text

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            mean_confidence_interval([1.0])
        with pytest.raises(InvalidParameterError):
            mean_confidence_interval([1.0, 2.0], confidence=1.5)


class TestBatchMeans:
    def test_covers_analytic_expected_cost(self):
        """Batch means over a real SW9 run cover the closed form."""
        from repro.analysis import connection as ca
        from repro.core import make_algorithm, replay
        from repro.costmodels import ConnectionCostModel
        from repro.workload import bernoulli_schedule

        theta = 0.35
        schedule = bernoulli_schedule(
            theta, 60_000, rng=np.random.default_rng(3)
        )
        result = replay(make_algorithm("sw9"), schedule, ConnectionCostModel())
        costs = [event.cost for event in result.events[1_000:]]
        interval = batch_means_interval(costs, batch_size=500, confidence=0.99)
        assert interval.contains(ca.expected_cost_swk(theta, 9))

    def test_needs_two_batches(self):
        with pytest.raises(InvalidParameterError):
            batch_means_interval([1.0] * 10, batch_size=10)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            batch_means_interval([1.0, 2.0], batch_size=0)


class TestRequiredSampleSize:
    def test_matches_hand_computation(self):
        # z(95%) ~ 1.96; n >= (1.96 * 1 / 0.01)^2 ~ 38416.
        n = required_sample_size(1.0, 0.01, 0.95)
        assert 38_000 < n < 39_000

    def test_monotone_in_half_width(self):
        assert required_sample_size(1.0, 0.001) > required_sample_size(1.0, 0.01)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            required_sample_size(0.0, 0.01)
        with pytest.raises(InvalidParameterError):
            required_sample_size(1.0, 0.01, confidence=0.0)
