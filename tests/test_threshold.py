"""Unit tests for the modified static methods T1m / T2m (section 7.1)."""

from __future__ import annotations

import pytest

from repro.core import ThresholdOneCopy, ThresholdTwoCopies, replay
from repro.costmodels import ConnectionCostModel, CostEventKind
from repro.exceptions import InvalidParameterError
from repro.types import READ, WRITE, AllocationScheme, Schedule


class TestThresholdOneCopy:
    def test_starts_one_copy(self):
        assert ThresholdOneCopy(3).scheme is AllocationScheme.ONE_COPY

    def test_allocates_after_m_consecutive_reads(self):
        algorithm = ThresholdOneCopy(3)
        assert algorithm.process(READ) is CostEventKind.REMOTE_READ
        assert algorithm.process(READ) is CostEventKind.REMOTE_READ
        assert not algorithm.mobile_has_copy
        # The third consecutive read piggybacks the copy.
        assert algorithm.process(READ) is CostEventKind.REMOTE_READ
        assert algorithm.mobile_has_copy
        assert algorithm.process(READ) is CostEventKind.LOCAL_READ

    def test_write_breaks_the_run(self):
        algorithm = ThresholdOneCopy(3)
        algorithm.process(READ)
        algorithm.process(READ)
        algorithm.process(WRITE)  # resets the counter
        algorithm.process(READ)
        algorithm.process(READ)
        assert not algorithm.mobile_has_copy
        algorithm.process(READ)
        assert algorithm.mobile_has_copy

    def test_first_write_after_burst_deallocates(self):
        algorithm = ThresholdOneCopy(2)
        algorithm.process(READ)
        algorithm.process(READ)
        assert algorithm.mobile_has_copy
        kind = algorithm.process(WRITE)
        assert kind is CostEventKind.WRITE_DELETE_REQUEST
        assert not algorithm.mobile_has_copy

    def test_writes_free_in_one_copy_state(self):
        algorithm = ThresholdOneCopy(2)
        assert algorithm.process(WRITE) is CostEventKind.WRITE_NO_COPY

    def test_m_one_behaves_like_sw1(self):
        """T1 with m=1 allocates on every remote read, drops on every
        write — the same scheme trajectory as SW1."""
        algorithm = ThresholdOneCopy(1)
        schedule = Schedule.from_string("rwrrwwr")
        expected_copy = [True, False, True, True, False, False, True]
        for request, expected in zip(schedule, expected_copy):
            algorithm.process(request.operation)
            assert algorithm.mobile_has_copy == expected

    def test_rejects_bad_m(self):
        with pytest.raises(InvalidParameterError):
            ThresholdOneCopy(0)
        with pytest.raises(InvalidParameterError):
            ThresholdOneCopy(-2)

    def test_reset(self):
        algorithm = ThresholdOneCopy(2)
        algorithm.process(READ)
        algorithm.process(READ)
        algorithm.reset()
        assert not algorithm.mobile_has_copy
        algorithm.process(READ)
        assert not algorithm.mobile_has_copy  # counter restarted


class TestThresholdTwoCopies:
    def test_starts_two_copies(self):
        assert ThresholdTwoCopies(3).scheme is AllocationScheme.TWO_COPIES

    def test_deallocates_after_m_consecutive_writes(self):
        algorithm = ThresholdTwoCopies(3)
        assert algorithm.process(WRITE) is CostEventKind.WRITE_PROPAGATED
        assert algorithm.process(WRITE) is CostEventKind.WRITE_PROPAGATED
        kind = algorithm.process(WRITE)
        assert kind is CostEventKind.WRITE_PROPAGATED_DEALLOCATE
        assert not algorithm.mobile_has_copy

    def test_read_breaks_the_run(self):
        algorithm = ThresholdTwoCopies(2)
        algorithm.process(WRITE)
        algorithm.process(READ)  # local read resets the counter
        algorithm.process(WRITE)
        assert algorithm.mobile_has_copy

    def test_reallocates_on_first_read(self):
        algorithm = ThresholdTwoCopies(1)
        algorithm.process(WRITE)
        assert not algorithm.mobile_has_copy
        assert algorithm.process(READ) is CostEventKind.REMOTE_READ
        assert algorithm.mobile_has_copy

    def test_writes_free_in_one_copy_state(self):
        algorithm = ThresholdTwoCopies(1)
        algorithm.process(WRITE)
        assert algorithm.process(WRITE) is CostEventKind.WRITE_NO_COPY


class TestThresholdDuality:
    def test_mirror_cost_in_connection_model(self):
        """T2m on sigma costs what T1m costs on the flipped sigma."""
        schedule = Schedule.from_string("wwrrwrwwwrwrrrw")
        flipped = Schedule.from_string(
            "".join("r" if c == "w" else "w" for c in schedule.to_string())
        )
        model = ConnectionCostModel()
        for m in (1, 2, 4):
            cost_t2 = replay(ThresholdTwoCopies(m), schedule, model).total_cost
            cost_t1 = replay(ThresholdOneCopy(m), flipped, model).total_cost
            assert cost_t2 == cost_t1
