"""Unit tests for the domain types (repro.types)."""

from __future__ import annotations

import pytest

from repro.exceptions import InvalidParameterError, InvalidScheduleError
from repro.types import (
    READ,
    WRITE,
    AllocationScheme,
    Operation,
    Origin,
    Request,
    Schedule,
    ensure_odd_window,
    ensure_probability,
)


class TestOperation:
    def test_symbols(self):
        assert Operation.READ.symbol == "r"
        assert Operation.WRITE.symbol == "w"

    def test_from_symbol_round_trip(self):
        for op in Operation:
            assert Operation.from_symbol(op.symbol) is op

    def test_from_symbol_case_insensitive(self):
        assert Operation.from_symbol("R") is READ
        assert Operation.from_symbol("W") is WRITE

    def test_from_symbol_rejects_unknown(self):
        with pytest.raises(InvalidScheduleError):
            Operation.from_symbol("x")

    def test_str(self):
        assert str(READ) == "r"
        assert str(WRITE) == "w"


class TestRequest:
    def test_read_properties(self):
        request = Request(READ)
        assert request.is_read
        assert not request.is_write
        assert request.origin is Origin.MOBILE

    def test_write_properties(self):
        request = Request(WRITE)
        assert request.is_write
        assert request.origin is Origin.STATIONARY

    def test_default_fields(self):
        request = Request(READ)
        assert request.timestamp == 0.0
        assert request.objects == ()

    def test_frozen(self):
        request = Request(READ)
        with pytest.raises(AttributeError):
            request.operation = WRITE

    def test_str_is_symbol(self):
        assert str(Request(WRITE)) == "w"


class TestScheduleConstruction:
    def test_from_string_paper_example(self):
        # The example schedule of section 3: w, r, r, r, w, r, w.
        schedule = Schedule.from_string("wrrrwrw")
        assert schedule.to_string() == "wrrrwrw"
        assert len(schedule) == 7
        assert schedule.read_count == 4
        assert schedule.write_count == 3

    def test_from_string_ignores_separators(self):
        assert Schedule.from_string("w; r, r\tr w").to_string() == "wrrrw"

    def test_from_string_rejects_garbage(self):
        with pytest.raises(InvalidScheduleError):
            Schedule.from_string("wxr")

    def test_from_operations(self):
        schedule = Schedule.from_operations([READ, WRITE, READ])
        assert schedule.to_string() == "rwr"

    def test_rejects_non_request_elements(self):
        with pytest.raises(InvalidScheduleError):
            Schedule(["r"])  # type: ignore[list-item]

    def test_empty_schedule(self):
        schedule = Schedule()
        assert len(schedule) == 0
        assert schedule.to_string() == ""


class TestScheduleSequenceProtocol:
    def test_indexing(self):
        schedule = Schedule.from_string("rw")
        assert schedule[0].is_read
        assert schedule[1].is_write
        assert schedule[-1].is_write

    def test_slicing_returns_schedule(self):
        schedule = Schedule.from_string("rwrwr")
        sliced = schedule[1:4]
        assert isinstance(sliced, Schedule)
        assert sliced.to_string() == "wrw"

    def test_concatenation(self):
        combined = Schedule.from_string("rr") + Schedule.from_string("ww")
        assert combined.to_string() == "rrww"

    def test_repetition(self):
        assert (Schedule.from_string("rw") * 3).to_string() == "rwrwrw"
        assert (2 * Schedule.from_string("r")).to_string() == "rr"

    def test_negative_repetition_rejected(self):
        with pytest.raises(InvalidScheduleError):
            Schedule.from_string("r") * -1

    def test_equality_and_hash(self):
        a = Schedule.from_string("rwr")
        b = Schedule.from_string("rwr")
        assert a == b
        assert hash(a) == hash(b)
        assert a != Schedule.from_string("rrw")

    def test_iteration(self):
        ops = [r.operation for r in Schedule.from_string("wr")]
        assert ops == [WRITE, READ]


class TestScheduleStatistics:
    def test_write_fraction(self):
        assert Schedule.from_string("wwrr").write_fraction == 0.5
        assert Schedule.from_string("w").write_fraction == 1.0

    def test_write_fraction_empty_rejected(self):
        with pytest.raises(InvalidScheduleError):
            Schedule().write_fraction


class TestScheduleTimestamps:
    def test_with_timestamps(self):
        schedule = Schedule.from_string("rw").with_timestamps([1.0, 2.5])
        assert schedule[0].timestamp == 1.0
        assert schedule[1].timestamp == 2.5

    def test_with_timestamps_wrong_length(self):
        with pytest.raises(InvalidScheduleError):
            Schedule.from_string("rw").with_timestamps([1.0])

    def test_with_timestamps_must_be_monotone(self):
        with pytest.raises(InvalidScheduleError):
            Schedule.from_string("rw").with_timestamps([2.0, 1.0])


class TestAllocationScheme:
    def test_mobile_has_copy(self):
        assert AllocationScheme.TWO_COPIES.mobile_has_copy
        assert not AllocationScheme.ONE_COPY.mobile_has_copy


class TestValidators:
    @pytest.mark.parametrize("k", [1, 3, 5, 99])
    def test_ensure_odd_window_accepts_odd(self, k):
        assert ensure_odd_window(k) == k

    @pytest.mark.parametrize("k", [0, 2, 4, -1, -3])
    def test_ensure_odd_window_rejects(self, k):
        with pytest.raises(InvalidParameterError):
            ensure_odd_window(k)

    def test_ensure_odd_window_rejects_bool_and_float(self):
        with pytest.raises(InvalidParameterError):
            ensure_odd_window(True)
        with pytest.raises(InvalidParameterError):
            ensure_odd_window(3.0)  # type: ignore[arg-type]

    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_ensure_probability_accepts(self, value):
        assert ensure_probability(value) == value

    @pytest.mark.parametrize("value", [-0.001, 1.001, 2.0])
    def test_ensure_probability_rejects(self, value):
        with pytest.raises(InvalidParameterError):
            ensure_probability(value)
