"""Tests for the vectorized replay fast path."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import make_algorithm, replay
from repro.core.vectorized import fast_event_kinds, fast_total_cost, supports
from repro.costmodels import ConnectionCostModel, MessageCostModel
from repro.exceptions import UnknownAlgorithmError
from repro.types import Schedule
from repro.workload import bernoulli_schedule

NAMES = ("st1", "st2", "sw1", "sw3", "sw9", "sw15", "t1_1", "t1_5", "t2_4")


class TestSupports:
    def test_supported(self):
        for name in NAMES:
            assert supports(name)

    def test_unsupported(self):
        assert not supports("ewma_20")
        assert not supports("hsw9_2")

    def test_unknown_raises(self):
        with pytest.raises(UnknownAlgorithmError):
            fast_total_cost("ewma_20", Schedule.from_string("rw"), ConnectionCostModel())


class TestExactEquality:
    @pytest.mark.parametrize("name", NAMES)
    @pytest.mark.parametrize("theta", [0.1, 0.5, 0.9])
    def test_event_kinds_match_reference(self, name, theta):
        rng = np.random.default_rng(hash((name, theta)) % 2**32)
        schedule = bernoulli_schedule(theta, 3_000, rng=rng)
        reference = replay(make_algorithm(name), schedule, ConnectionCostModel())
        assert fast_event_kinds(name, schedule) == tuple(
            event.kind for event in reference.events
        )

    @pytest.mark.parametrize("name", NAMES)
    def test_costs_match_in_both_models(self, name):
        schedule = bernoulli_schedule(
            0.45, 2_000, rng=np.random.default_rng(9)
        )
        for model in (ConnectionCostModel(), MessageCostModel(0.35)):
            reference = replay(make_algorithm(name), schedule, model)
            assert fast_total_cost(name, schedule, model) == pytest.approx(
                reference.total_cost
            )

    def test_empty_schedule(self):
        assert fast_total_cost("sw9", Schedule(), ConnectionCostModel()) == 0.0
        assert fast_event_kinds("sw9", Schedule()) == ()

    def test_single_request(self):
        schedule = Schedule.from_string("r")
        reference = replay(make_algorithm("sw3"), schedule, ConnectionCostModel())
        assert fast_event_kinds("sw3", schedule) == tuple(
            event.kind for event in reference.events
        )

    @given(text=st.text(alphabet="rw", min_size=0, max_size=200),
           k=st.integers(min_value=1, max_value=7).map(lambda n: 2 * n + 1))
    @settings(max_examples=150, deadline=None)
    def test_hypothesis_equivalence_swk(self, text, k):
        schedule = Schedule.from_string(text)
        name = f"sw{k}"
        reference = replay(make_algorithm(name), schedule, ConnectionCostModel())
        fast = fast_event_kinds(name, schedule)
        assert fast == tuple(event.kind for event in reference.events)

    @given(text=st.text(alphabet="rw", min_size=0, max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_hypothesis_equivalence_sw1(self, text):
        schedule = Schedule.from_string(text)
        reference = replay(make_algorithm("sw1"), schedule, ConnectionCostModel())
        assert fast_event_kinds("sw1", schedule) == tuple(
            event.kind for event in reference.events
        )

    @given(text=st.text(alphabet="rw", min_size=0, max_size=200),
           m=st.integers(min_value=1, max_value=6))
    @settings(max_examples=100, deadline=None)
    def test_hypothesis_equivalence_thresholds(self, text, m):
        """The run-length kernels equal the reference for T1m and T2m."""
        schedule = Schedule.from_string(text)
        for name in (f"t1_{m}", f"t2_{m}"):
            reference = replay(
                make_algorithm(name), schedule, ConnectionCostModel()
            )
            assert fast_event_kinds(name, schedule) == tuple(
                event.kind for event in reference.events
            )
