"""Unit tests for workload generation (Poisson, adversaries, regimes)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.types import Operation, Schedule
from repro.workload import (
    GreedyAdversary,
    PoissonWorkload,
    RegimePeriod,
    RegimeWorkload,
    all_reads,
    all_writes,
    alternating,
    bernoulli_schedule,
    sw1_tight_schedule,
    swk_tight_schedule,
    theta_from_rates,
    threshold_tight_schedule,
    uniform_theta_regimes,
)
from repro.core import make_algorithm
from repro.costmodels import ConnectionCostModel


class TestThetaFromRates:
    def test_value(self):
        assert theta_from_rates(read_rate=3.0, write_rate=1.0) == 0.25

    def test_rejects_negative(self):
        with pytest.raises(InvalidParameterError):
            theta_from_rates(-1.0, 1.0)

    def test_rejects_both_zero(self):
        with pytest.raises(InvalidParameterError):
            theta_from_rates(0.0, 0.0)

    def test_pure_streams(self):
        assert theta_from_rates(0.0, 5.0) == 1.0
        assert theta_from_rates(5.0, 0.0) == 0.0


class TestBernoulliSchedule:
    def test_length(self, rng):
        assert len(bernoulli_schedule(0.5, 1000, rng=rng)) == 1000

    def test_extremes(self, rng):
        assert bernoulli_schedule(0.0, 100, rng=rng).write_count == 0
        assert bernoulli_schedule(1.0, 100, rng=rng).write_count == 100

    def test_empirical_fraction(self, rng):
        schedule = bernoulli_schedule(0.3, 50_000, rng=rng)
        assert schedule.write_fraction == pytest.approx(0.3, abs=0.01)

    def test_deterministic_under_seed(self):
        a = bernoulli_schedule(0.4, 50, rng=np.random.default_rng(5))
        b = bernoulli_schedule(0.4, 50, rng=np.random.default_rng(5))
        assert a == b

    def test_rejects_bad_parameters(self, rng):
        with pytest.raises(InvalidParameterError):
            bernoulli_schedule(1.5, 10, rng=rng)
        with pytest.raises(InvalidParameterError):
            bernoulli_schedule(0.5, -1, rng=rng)


class TestPoissonWorkload:
    def test_theta(self):
        workload = PoissonWorkload(read_rate=6.0, write_rate=2.0, seed=1)
        assert workload.theta == 0.25

    def test_timestamps_strictly_increase(self):
        workload = PoissonWorkload(read_rate=5.0, write_rate=5.0, seed=2)
        schedule = workload.generate(500)
        times = [request.timestamp for request in schedule]
        assert all(a < b for a, b in zip(times, times[1:]))

    def test_rate_controls_density(self):
        fast = PoissonWorkload(read_rate=100.0, write_rate=0.0, seed=3)
        schedule = fast.generate(10_000)
        # ~100 requests per time unit.
        assert schedule[-1].timestamp == pytest.approx(100.0, rel=0.1)

    def test_generate_until_horizon(self):
        workload = PoissonWorkload(read_rate=50.0, write_rate=50.0, seed=4)
        schedule = workload.generate_until(10.0)
        assert all(request.timestamp < 10.0 for request in schedule)
        # Expected ~1000 arrivals.
        assert 800 < len(schedule) < 1200

    def test_write_fraction_converges(self):
        workload = PoissonWorkload(read_rate=1.0, write_rate=3.0, seed=5)
        schedule = workload.generate(30_000)
        assert schedule.write_fraction == pytest.approx(0.75, abs=0.02)


class TestDeterministicAdversaries:
    def test_all_reads_writes(self):
        assert all_reads(5).to_string() == "rrrrr"
        assert all_writes(3).to_string() == "www"

    def test_alternating(self):
        assert alternating(3).to_string() == "rwrwrw"
        assert alternating(2, read_first=False).to_string() == "wrwr"

    def test_sw1_tight_is_alternating(self):
        assert sw1_tight_schedule(2).to_string() == "rwrw"

    def test_swk_tight_structure(self):
        schedule = swk_tight_schedule(5, 2)
        assert schedule.to_string() == "rrrwwwrrrwww"

    def test_threshold_tight_structure(self):
        assert threshold_tight_schedule(3, 2).to_string() == "rrrwrrrw"

    def test_rejects_bad_parameters(self):
        with pytest.raises(InvalidParameterError):
            swk_tight_schedule(4, 2)
        with pytest.raises(InvalidParameterError):
            all_reads(0)


class TestGreedyAdversary:
    def test_generates_requested_length(self):
        adversary = GreedyAdversary(
            make_algorithm("sw3"), ConnectionCostModel(), seed=1
        )
        assert len(adversary.generate(50)) == 50

    def test_hurts_more_than_random(self):
        """The greedy stream costs the online algorithm at least as
        much per request as a random one."""
        from repro.core import replay

        model = ConnectionCostModel()
        algorithm = make_algorithm("sw3")
        greedy = GreedyAdversary(algorithm, model, seed=2).generate(400)
        random = bernoulli_schedule(0.5, 400, rng=np.random.default_rng(3))
        greedy_cost = replay(make_algorithm("sw3"), greedy, model).total_cost
        random_cost = replay(make_algorithm("sw3"), random, model).total_cost
        assert greedy_cost >= random_cost

    def test_greedy_against_st1_is_all_reads(self):
        adversary = GreedyAdversary(
            make_algorithm("st1"), ConnectionCostModel(), seed=4
        )
        assert adversary.generate(20).to_string() == "r" * 20


class TestRegimes:
    def test_period_validation(self):
        with pytest.raises(InvalidParameterError):
            RegimePeriod(theta=1.5, length=10)
        with pytest.raises(InvalidParameterError):
            RegimePeriod(theta=0.5, length=-1)

    def test_workload_needs_periods(self):
        with pytest.raises(InvalidParameterError):
            RegimeWorkload([])

    def test_total_length(self):
        workload = RegimeWorkload(
            [RegimePeriod(0.2, 100), RegimePeriod(0.9, 50)], seed=1
        )
        assert workload.total_length == 150
        assert len(workload.generate()) == 150

    def test_segments_follow_their_theta(self):
        workload = RegimeWorkload(
            [RegimePeriod(0.05, 5_000), RegimePeriod(0.95, 5_000)], seed=2
        )
        low, high = workload.generate_segments()
        assert low.write_fraction < 0.1
        assert high.write_fraction > 0.9

    def test_uniform_theta_regimes(self):
        workload = uniform_theta_regimes(20, 100, seed=3)
        assert len(workload.periods) == 20
        assert workload.total_length == 2_000
        thetas = [p.theta for p in workload.periods]
        assert all(0.0 <= t <= 1.0 for t in thetas)
        # Uniform draws: mean near 1/2 over 20 periods (loose bound).
        assert 0.2 < float(np.mean(thetas)) < 0.8

    def test_uniform_regimes_reproducible(self):
        a = uniform_theta_regimes(5, 50, seed=7).generate()
        b = uniform_theta_regimes(5, 50, seed=7).generate()
        assert a == b

    def test_rejects_bad_parameters(self):
        with pytest.raises(InvalidParameterError):
            uniform_theta_regimes(0, 10)
        with pytest.raises(InvalidParameterError):
            uniform_theta_regimes(5, 0)
