"""Unit tests for the Markov-modulated bursty workload."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.workload import BurstyWorkload


class TestBurstyWorkload:
    def test_stationary_theta(self):
        workload = BurstyWorkload(0.1, 0.9, mean_sojourn=100, seed=1)
        assert workload.stationary_theta == pytest.approx(0.5)
        schedule = workload.generate(100_000)
        assert schedule.write_fraction == pytest.approx(0.5, abs=0.05)

    def test_piecewise_static_optimum(self):
        workload = BurstyWorkload(0.1, 0.9, mean_sojourn=10, seed=2)
        assert workload.piecewise_static_optimum == pytest.approx(0.1)
        asymmetric = BurstyWorkload(0.2, 0.6, mean_sojourn=10, seed=3)
        assert asymmetric.piecewise_static_optimum == pytest.approx(
            (0.2 + 0.4) / 2
        )

    def test_long_sojourns_produce_long_phases(self):
        """With S=1000 the autocorrelation of the write indicator at
        lag 10 is strongly positive; with S=1 it vanishes."""

        def lag_autocorr(schedule, lag=10):
            bits = np.array([1.0 if r.is_write else 0.0 for r in schedule])
            a, b = bits[:-lag], bits[lag:]
            return float(np.corrcoef(a, b)[0, 1])

        bursty = BurstyWorkload(0.05, 0.95, mean_sojourn=1_000, seed=4)
        # mean_sojourn=2 -> switch probability 1/2 -> the phase after
        # each request is uniform regardless of the current one, so the
        # phases (and the operations) are i.i.d.
        smooth = BurstyWorkload(0.05, 0.95, mean_sojourn=2, seed=5)
        assert lag_autocorr(bursty.generate(50_000)) > 0.5
        assert abs(lag_autocorr(smooth.generate(50_000))) < 0.05

    def test_identical_thetas_degenerate_to_bernoulli(self):
        workload = BurstyWorkload(0.3, 0.3, mean_sojourn=50, seed=6)
        schedule = workload.generate(50_000)
        assert schedule.write_fraction == pytest.approx(0.3, abs=0.01)

    def test_reproducible(self):
        a = BurstyWorkload(0.2, 0.8, 20, seed=7).generate(500)
        b = BurstyWorkload(0.2, 0.8, 20, seed=7).generate(500)
        assert a == b

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            BurstyWorkload(1.2, 0.5, 10)
        with pytest.raises(InvalidParameterError):
            BurstyWorkload(0.5, 0.5, 0.5)
        with pytest.raises(InvalidParameterError):
            BurstyWorkload(0.2, 0.8, 10, seed=1).generate(-1)

    def test_sliding_window_exploits_burstiness(self):
        """The headline behaviour behind experiment t-bursty."""
        from repro.core import make_algorithm, replay
        from repro.costmodels import ConnectionCostModel

        model = ConnectionCostModel()
        schedule = BurstyWorkload(0.1, 0.9, 1_000, seed=8).generate(60_000)
        sw9 = replay(make_algorithm("sw9"), schedule, model).mean_cost
        st1 = replay(make_algorithm("st1"), schedule, model).mean_cost
        st2 = replay(make_algorithm("st2"), schedule, model).mean_cost
        assert sw9 < 0.15
        assert min(st1, st2) > 0.4
