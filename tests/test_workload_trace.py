"""Unit tests for trace I/O and trace profiling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InvalidScheduleError
from repro.types import Operation, Request, Schedule
from repro.workload import BurstyWorkload, bernoulli_schedule
from repro.workload.trace import (
    dumps_trace,
    load_trace,
    loads_trace,
    profile_trace,
    save_trace,
)


class TestParsing:
    def test_bare_operations(self):
        schedule = loads_trace("r\nw\nr\n")
        assert schedule.to_string() == "rwr"

    def test_comments_and_blanks(self):
        schedule = loads_trace("# header\n\nr  # inline\nw\n")
        assert schedule.to_string() == "rw"

    def test_timestamps(self):
        schedule = loads_trace("r 1.5\nw 2.25\n")
        assert schedule[0].timestamp == 1.5
        assert schedule[1].timestamp == 2.25

    def test_items(self):
        schedule = loads_trace("r 1.0 quotes\nw 2.0 weather\n")
        assert schedule[0].objects == ("quotes",)
        assert schedule[1].objects == ("weather",)

    def test_rejects_bad_operation(self):
        with pytest.raises(InvalidScheduleError, match="line 2"):
            loads_trace("r\nx\n")

    def test_rejects_bad_timestamp(self):
        with pytest.raises(InvalidScheduleError, match="line 1"):
            loads_trace("r then\n")

    def test_rejects_extra_fields(self):
        with pytest.raises(InvalidScheduleError):
            loads_trace("r 1.0 item extra\n")

    def test_rejects_time_travel(self):
        with pytest.raises(InvalidScheduleError, match="non-decreasing"):
            loads_trace("r 5.0\nw 1.0\n")

    def test_empty_trace(self):
        assert len(loads_trace("# nothing here\n")) == 0


class TestRoundTrip:
    def test_string_round_trip(self):
        original = Schedule(
            [
                Request(Operation.READ, 0.5, ("a",)),
                Request(Operation.WRITE, 1.25),
            ]
        )
        assert loads_trace(dumps_trace(original)) == original
        restored = loads_trace(dumps_trace(original))
        assert restored[0].objects == ("a",)
        assert restored[1].timestamp == 1.25

    def test_file_round_trip(self, tmp_path):
        original = bernoulli_schedule(0.4, 200, rng=np.random.default_rng(1))
        path = tmp_path / "trace.txt"
        save_trace(original, path)
        assert load_trace(path) == original

    def test_plain_format_without_timestamps(self):
        schedule = Schedule.from_string("rwr")
        assert dumps_trace(schedule, include_timestamps=False) == "r\nw\nr\n"

    def test_empty_dumps(self):
        assert dumps_trace(Schedule()) == ""

    def test_rejects_multi_object_rows(self):
        schedule = Schedule([Request(Operation.READ, objects=("a", "b"))])
        with pytest.raises(InvalidScheduleError):
            dumps_trace(schedule)


class TestProfiling:
    def test_stationary_trace(self):
        schedule = bernoulli_schedule(0.3, 20_000, rng=np.random.default_rng(2))
        profile = profile_trace(schedule, window=200)
        assert profile.write_fraction == pytest.approx(0.3, abs=0.02)
        assert profile.looks_stationary
        assert profile.theta_drift < 0.06

    def test_bursty_trace_shows_drift_and_phases(self):
        schedule = BurstyWorkload(0.05, 0.95, 2_000, seed=3).generate(40_000)
        profile = profile_trace(schedule, window=200)
        assert not profile.looks_stationary
        assert profile.theta_drift > 0.2
        # Phases of the thresholded rolling theta reflect the sojourns.
        assert profile.mean_phase_length > 500

    def test_rolling_length(self):
        schedule = bernoulli_schedule(0.5, 500, rng=np.random.default_rng(4))
        profile = profile_trace(schedule, window=100)
        assert len(profile.rolling_theta) == 401

    def test_validation(self):
        schedule = bernoulli_schedule(0.5, 50, rng=np.random.default_rng(5))
        with pytest.raises(InvalidScheduleError):
            profile_trace(schedule, window=100)
        with pytest.raises(InvalidScheduleError):
            profile_trace(schedule, window=0)

    def test_profile_guides_method_choice(self):
        """End-to-end: the profile separates the workloads that need a
        dynamic method from those that don't."""
        stationary = bernoulli_schedule(
            0.2, 20_000, rng=np.random.default_rng(6)
        )
        drifting = BurstyWorkload(0.05, 0.95, 1_000, seed=7).generate(20_000)
        assert profile_trace(stationary).looks_stationary
        assert not profile_trace(drifting).looks_stationary
